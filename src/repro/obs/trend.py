"""N-run trend analysis over the run ledger, and the ``runs`` CLI.

``compare-runs`` answers "did run B regress against run A?"; this module
answers the fleet-scale question: *across the last N runs of each
experiment, is any metric drifting the wrong way?*  It consumes the
ledger entries of :mod:`repro.obs.ledger`, groups them into series —
``(kind, experiment, scale, host)``, so baselines and noise floors are
scoped per machine — and fits a robust per-metric baseline (the window
median) plus a two-segment changepoint split, reusing the thresholds and
noise floors of :mod:`repro.obs.compare`:

- ``timing/...`` metrics (stage totals, benchmark means) gate when the
  latest run sits more than ``threshold`` above the window median and
  the baseline clears the ``min_seconds`` noise floor, **or** when a
  sustained changepoint (suffix of >= 2 runs) shifted the median up by
  more than ``threshold`` — a single noisy run cannot hide a step
  change, and a step change cannot hide behind a recovered median;
- ``gauge/netsim.cycles_per_sec/...`` gauges gate symmetrically
  downward: engine throughput dropping more than ``threshold`` below
  the window median (or across a sustained changepoint) is a
  regression;
- the latency SLO gauges (``gauge/netsim.latency_p99``,
  ``gauge/netsim.worst_pair_p99``) gate upward like timings — a tail
  that blows past the window median ships no more silently than a slow
  stage — and ``gauge/netsim.fairness_jain`` gates downward (a fairness
  collapse is a regression).  ``gauge/core.arena_bytes`` (resident
  path-table footprint) gates upward: a path-store memory blow-up is a
  perf regression even when wall time holds.  Other gauges —
  ``core.pairs_resident`` among them — are reported, never gated;
- ``counter/...`` metrics gate in either direction only when
  ``metric_threshold`` is given, exactly like ``compare-runs`` —
  counters are deterministic for a fixed seed, so the drift gate
  doubles as a reproducibility check;
- series whose entries ran **different engine tiers** (reference, fast,
  batched) get the same cross-engine waiver as ``compare-runs``:
  timings are reported, not gated, and the report says why.

Gating needs history: series shorter than ``min_runs`` (default 3) are
reported but never gate.  The CLI family::

    python -m repro.experiments runs list   [--ledger PATH ...]
    python -m repro.experiments runs show   ID
    python -m repro.experiments runs trend  [--gate] [--window N] ...
    python -m repro.experiments runs gate   [--window N] ...
    python -m repro.experiments runs dashboard --out FILE.html

``runs gate`` (and ``runs trend --gate``) exits 1 on any trend
regression and 2 when no usable entries exist, so CI can gate the
committed perf trajectory instead of a single A/B pair.  Output is
deterministic: the ASCII tables and the HTML dashboard are pure
functions of the ledger contents.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ComparisonError
from repro.obs.ledger import default_ledger_path, load_entries, series_key

__all__ = [
    "EXPORT_COLUMNS",
    "MetricTrend",
    "TrendReport",
    "analyze_entries",
    "export_csv",
    "main",
]

#: Prefix of the engine-throughput gauges (higher is better, gated).
CPS_PREFIX = "gauge/netsim.cycles_per_sec/"

#: Latency SLO gauges (cycle-valued; larger is worse, gated).
LATENCY_GAUGES = (
    "gauge/netsim.latency_p99",
    "gauge/netsim.worst_pair_p99",
)

#: Fairness gauges (Jain index in (0, 1]; smaller is worse, gated).
FAIRNESS_GAUGES = ("gauge/netsim.fairness_jain",)

#: Path-table footprint gauges (bytes resident; larger is worse, gated).
#: ``core.pairs_resident`` stays report-only — pair counts track the
#: workload, not the store's efficiency.
FOOTPRINT_GAUGES = ("gauge/core.arena_bytes",)


@dataclass(frozen=True)
class MetricTrend:
    """The trajectory of one metric within one series."""

    series: Tuple[str, str, str, str]  # (kind, experiment, scale, host)
    metric: str                        # "timing/..." | "gauge/..." | "counter/..."
    values: Tuple[float, ...]          # time-ordered window
    baseline: float                    # window median
    latest: float
    regression: bool
    changepoint: Optional[int] = None  # split index of the best changepoint
    shift: Optional[float] = None      # relative median shift across it
    note: str = ""                     # e.g. "cross-engine: not gated"

    @property
    def label(self) -> str:
        kind, experiment, scale, host = self.series
        where = f"@{host}" if host else ""
        if kind == "bench":
            return f"{experiment}{where}"
        return f"{experiment}[{scale}]{where}"

    @property
    def ratio(self) -> float:
        if self.baseline > 0:
            return self.latest / self.baseline
        return float("inf") if self.latest > 0 else 1.0


@dataclass
class TrendReport:
    """Every analysed metric trend plus series-level notes."""

    trends: List[MetricTrend] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    n_entries: int = 0
    n_series: int = 0

    @property
    def regressions(self) -> List[MetricTrend]:
        return [t for t in self.trends if t.regression]


def _direction(metric: str) -> Optional[int]:
    """+1 when larger is worse, -1 when smaller is worse, None = report only."""
    if metric.startswith("timing/"):
        return 1
    if metric.startswith(CPS_PREFIX):
        return -1
    if metric in LATENCY_GAUGES:
        return 1
    if metric in FAIRNESS_GAUGES:
        return -1
    if metric in FOOTPRINT_GAUGES:
        return 1
    return None


def _changepoint(values: Sequence[float]) -> Tuple[Optional[int], Optional[float]]:
    """The best two-segment split of ``values``: ``(index, median shift)``.

    Scans every split with a suffix of at least two runs (one outlier is
    the baseline rule's job, not a changepoint) and returns the split
    with the largest relative shift between segment medians; equal
    shifts break toward the split whose segments are most homogeneous
    (smallest total deviation from their own medians), which lands the
    index on the actual regime boundary rather than the first split
    straddling it.  ``shift`` is ``median(suffix)/median(prefix) - 1``;
    ``None`` when no split qualifies or the prefix median is zero.
    """
    n = len(values)
    best: Tuple[Optional[int], Optional[float]] = (None, None)
    best_rank = None
    for k in range(1, n - 1):  # suffix values[k:] has >= 2 points
        pre_m = median(values[:k])
        post_m = median(values[k:])
        if pre_m <= 0:
            continue
        shift = post_m / pre_m - 1.0
        if shift == 0.0:
            continue
        cost = sum(abs(v - pre_m) for v in values[:k]) + sum(
            abs(v - post_m) for v in values[k:]
        )
        rank = (abs(shift), -cost)
        if best_rank is None or rank > best_rank:
            best_rank = rank
            best = (k, shift)
    return best


def analyze_entries(
    entries: Sequence[Mapping],
    *,
    window: Optional[int] = None,
    threshold: float = 0.25,
    metric_threshold: Optional[float] = None,
    min_seconds: float = 0.05,
    min_runs: int = 3,
    metric_filter: Optional[str] = None,
) -> TrendReport:
    """Fit per-metric trends over time-ordered ledger ``entries``.

    ``window`` keeps only each series' most recent N entries.
    ``metric_filter`` is a substring filter on metric names (the CLI's
    ``--metric``).  Thresholds mirror :func:`repro.obs.compare.
    compare_manifests`; see the module docstring for the gating rules.
    """
    series: Dict[tuple, List[Mapping]] = {}
    for entry in entries:
        series.setdefault(series_key(entry), []).append(entry)

    report = TrendReport(n_entries=len(entries), n_series=len(series))
    for key in sorted(series):
        group = series[key]
        if window is not None and window > 0:
            group = group[-window:]
        engine_sets = {tuple(e.get("engines") or ()) for e in group}
        cross_engine = len(engine_sets) > 1
        if cross_engine:
            kinds = sorted({e for s in engine_sets for e in s})
            report.notes.append(
                f"{'/'.join(k for k in key if k)}: entries mix engine tiers "
                f"({', '.join(kinds) or 'none'}) — timings reported, not gated"
            )
        metrics = sorted({m for e in group for m in (e.get("metrics") or {})})
        for name in metrics:
            if metric_filter and metric_filter not in name:
                continue
            values = [
                float(e["metrics"][name])
                for e in group
                if name in (e.get("metrics") or {})
            ]
            if len(values) < 2:
                continue
            base = median(values)
            latest = values[-1]
            cp, shift = _changepoint(values)
            direction = _direction(name)
            gateable = len(values) >= min_runs
            regression = False
            note = ""
            if direction is not None and cross_engine and name.startswith("timing/"):
                note = "cross-engine: not gated"
            elif direction == 1 and gateable:
                floor_ok = base >= min_seconds
                if floor_ok and latest > base * (1.0 + threshold):
                    regression = True
                elif (
                    cp is not None
                    and shift is not None
                    and shift > threshold
                    and median(values[:cp]) >= min_seconds
                ):
                    regression = True
                    note = f"changepoint at run {cp}"
            elif direction == -1 and gateable:
                if base > 0 and latest < base * (1.0 - threshold):
                    regression = True
                elif cp is not None and shift is not None and shift < -threshold:
                    regression = True
                    note = f"changepoint at run {cp}"
            elif (
                direction is None
                and name.startswith("counter/")
                and metric_threshold is not None
                and gateable
            ):
                if base > 0:
                    regression = abs(latest / base - 1.0) > metric_threshold
                else:
                    regression = latest > 0
            report.trends.append(
                MetricTrend(
                    series=key,
                    metric=name,
                    values=tuple(values),
                    baseline=base,
                    latest=latest,
                    regression=regression,
                    changepoint=cp,
                    shift=shift,
                    note=note,
                )
            )
    return report


# ---------------------------------------------------------------- export

#: Fixed column order of ``runs export --csv`` — downstream notebooks and
#: spreadsheets key on positions, so this tuple is append-only.
EXPORT_COLUMNS = (
    "id", "created_at", "kind", "experiment", "scale", "host",
    "engines", "batch_lanes", "seed", "metric", "value",
)


def export_csv(entries: Sequence[Mapping]) -> str:
    """Flatten ledger entries into CSV text: one row per (entry, metric).

    The export is a pure function of the ledger contents — entries keep
    their load order, metrics sort by name within an entry, ``engines``
    joins with ``";"``, and values use ``repr(float)`` — so two exports
    of the same ledger are byte-identical.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(EXPORT_COLUMNS)
    for entry in entries:
        head = [
            entry.get("id", ""),
            entry.get("created_at", ""),
            entry.get("kind", ""),
            entry.get("experiment", ""),
            entry.get("scale", ""),
            entry.get("host", ""),
            ";".join(str(e) for e in entry.get("engines") or ()),
            entry.get("batch_lanes"),
            entry.get("seed"),
        ]
        metrics = entry.get("metrics") or {}
        for name in sorted(metrics):
            writer.writerow(head + [name, repr(float(metrics[name]))])
    return buf.getvalue()


# ---------------------------------------------------------------- CLI


def _resolve_ledgers(args) -> List[Path]:
    if args.ledger:
        return [Path(p) for p in args.ledger]
    return [default_ledger_path()]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger", action="append", metavar="PATH", default=None,
        help="ledger file(s) to read; repeatable — entries merge and "
        "dedup across files (default: $REPRO_RUN_LEDGER or "
        "~/.cache/repro/run-ledger.jsonl)",
    )


def _add_trend_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="analyse only each series' most recent N runs (default: all)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="max allowed relative drift of gated metrics: timings up, "
        "cycles/sec down (default 0.25)",
    )
    parser.add_argument(
        "--metric-threshold", type=float, default=None,
        help="gate counters drifting more than this fraction in either "
        "direction (default: report only)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="noise floor: ignore timing trends whose baseline is below "
        "this many seconds (default 0.05)",
    )
    parser.add_argument(
        "--min-runs", type=int, default=3,
        help="series shorter than this never gate (default 3)",
    )
    parser.add_argument(
        "--metric", default=None, metavar="SUBSTR",
        help="only analyse metrics whose name contains SUBSTR",
    )


def _analyze(args, entries) -> TrendReport:
    return analyze_entries(
        entries,
        window=args.window,
        threshold=args.threshold,
        metric_threshold=args.metric_threshold,
        min_seconds=args.min_seconds,
        min_runs=args.min_runs,
        metric_filter=args.metric,
    )


def main(argv=None) -> int:
    """``python -m repro.experiments runs ...`` — the ledger CLI family."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments runs",
        description="Inspect and trend-gate the persistent run ledger.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="tabulate the ledger's entries")
    _add_common(p_list)

    p_show = sub.add_parser("show", help="print one entry as JSON")
    _add_common(p_show)
    p_show.add_argument("id", help="entry id (unambiguous prefix accepted)")

    p_trend = sub.add_parser(
        "trend", help="per-metric trend tables with sparklines"
    )
    _add_common(p_trend)
    _add_trend_options(p_trend)
    p_trend.add_argument(
        "--gate", action="store_true",
        help="exit 1 when any metric trend regressed",
    )
    p_trend.add_argument(
        "--all", action="store_true",
        help="show every metric (default: timings, cycles/sec and "
        "regressions only)",
    )

    p_gate = sub.add_parser(
        "gate", help="trend-gate the ledger (shorthand for trend --gate)"
    )
    _add_common(p_gate)
    _add_trend_options(p_gate)

    p_export = sub.add_parser(
        "export", help="flatten the ledger to CSV (one row per metric)"
    )
    _add_common(p_export)
    p_export.add_argument(
        "--csv", action="store_true", required=True,
        help="CSV format (the only format; the flag keeps room for more)",
    )
    p_export.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="write to FILE instead of stdout",
    )

    p_dash = sub.add_parser(
        "dashboard", help="write the static HTML fleet dashboard"
    )
    _add_common(p_dash)
    _add_trend_options(p_dash)
    p_dash.add_argument(
        "--out", type=Path, required=True, metavar="FILE",
        help="output HTML file (self-contained, no external assets)",
    )

    args = parser.parse_args(argv)
    paths = _resolve_ledgers(args)
    try:
        entries = load_entries(paths)
    except ComparisonError as exc:
        print(f"runs: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(
            "runs: no ledger entries under "
            + ", ".join(str(p) for p in paths)
            + " (run experiments with --telemetry-dir, or pass --ledger)",
            file=sys.stderr,
        )
        return 2

    if args.command == "list":
        from repro.report import ledger_table

        print(ledger_table(entries))
        return 0

    if args.command == "show":
        matches = [e for e in entries if e["id"].startswith(args.id)]
        if not matches:
            print(f"runs: no entry with id {args.id!r}", file=sys.stderr)
            return 2
        if len(matches) > 1:
            print(
                f"runs: id prefix {args.id!r} is ambiguous "
                f"({len(matches)} entries)",
                file=sys.stderr,
            )
            return 2
        print(json.dumps(matches[0], indent=2, sort_keys=True))
        return 0

    if args.command == "export":
        text = export_csv(entries)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(text)
            print(f"# csv: {args.out}")
        else:
            sys.stdout.write(text)
        return 0

    report = _analyze(args, entries)
    if args.command == "dashboard":
        from repro.report import trend_dashboard_html

        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(trend_dashboard_html(report, entries))
        print(f"# dashboard: {args.out}")
        return 0

    from repro.report import trend_table

    gate = args.command == "gate" or args.gate
    show_all = getattr(args, "all", False)
    print(trend_table(report, show_all=show_all))
    n = len(report.regressions)
    if gate:
        return 1 if n else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
