"""Dense per-window link-state telemetry for the flit-level simulator.

The windowed time series (:mod:`repro.obs.timeseries`) keeps only the
``top_links`` hottest links per window — enough to spot *that* a link ran
hot, not enough to see congestion *spread*.  This module records the full
spatial picture: for every directed link of the topology (switch links,
then per-host injection and ejection links, in
:class:`~repro.topology.jellyfish.Jellyfish` link-id order) and every
window, three dense int64 matrices of shape ``(windows, n_links)``:

- ``forwarded`` — flits that traversed the link in the window (switch
  links at the allocation grant, injection links at source launch,
  ejection links at the eject grant);
- ``credit_stalls`` — head-of-line requests blocked on the link in the
  window, charged to the link the packet *wanted* (injection links when
  the source VC-0 buffer was full; ejection links never stall);
- ``peak_occupancy`` — the maximum downstream VC occupancy the link
  reached during the window (carried over: a window opens at the
  occupancy the last one closed at).

The same three design rules as ``metrics``/``trace``/``timeseries``:

- **Module state, NOOP off.**  One active recorder per process
  (:func:`enable` / :func:`capture`); simulators read :func:`active`
  once at construction and pay nothing when it is ``None``.
- **Task-order merge.**  Worker snapshots merge with run-id offsets
  (:meth:`LinkstateRecorder.merge`), so a parallel or batched-lane
  ``run_saturation_grid`` produces the byte-identical link state of a
  serial run under one recorder.
- **``.npz`` persistence** next to the run manifest
  (:func:`save_linkstate` / :func:`load_linkstate`).

The snapshot also carries the link endpoint tables (``link_src`` /
``link_dst``: switch ids, hosts encoded as ``-1 - host``), so the
forensics layer (:mod:`repro.obs.forensics`) can walk stall propagation
upstream through the topology without re-loading it.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "LINKSTATE_FORMAT",
    "ROW_COLS",
    "MATRIX_COLS",
    "LinkstateRecorder",
    "link_endpoints",
    "enable",
    "disable",
    "enabled",
    "active",
    "capture",
    "config",
    "snapshot",
    "merge_snapshot",
    "save_linkstate",
    "load_linkstate",
]

LINKSTATE_FORMAT = "repro-linkstate-v1"

#: Scalar per-window columns (all int64), one row per (run, window).
ROW_COLS = ("run", "index", "start", "cycles")

#: Dense per-link matrices, one row per (run, window), one column per link.
MATRIX_COLS = ("forwarded", "credit_stalls", "peak_occupancy")


def link_endpoints(topology) -> Dict[str, np.ndarray]:
    """Endpoint tables for every directed link of ``topology``.

    Returns ``{"link_src": ..., "link_dst": ...}`` int64 arrays of length
    ``n_links`` in link-id order.  Switch endpoints are switch ids; host
    endpoints (injection sources, ejection destinations) are encoded as
    ``-1 - host`` so the two id spaces cannot collide.
    """
    n = topology.n_links
    src = np.empty(n, dtype=np.int64)
    dst = np.empty(n, dtype=np.int64)
    for lid, (u, v) in enumerate(topology.switch_links()):
        src[lid] = u
        dst[lid] = v
    for h in range(topology.n_hosts):
        sw = topology.switch_of_host(h)
        src[topology.injection_link_base + h] = -1 - h
        dst[topology.injection_link_base + h] = sw
        src[topology.ejection_link_base + h] = sw
        dst[topology.ejection_link_base + h] = -1 - h
    return {"link_src": src, "link_dst": dst}


class LinkstateRecorder:
    """Columnar dense per-link store fed by the simulator at window edges.

    Parameters
    ----------
    window:
        Window width in cycles.  The simulator flushes a row whenever the
        absolute cycle count crosses a multiple of ``window`` (plus one
        final partial row at the end of a run).
    capacity:
        Initially preallocated rows; buffers double when exceeded.

    The number of links is not a constructor parameter: the recorder
    adopts it from the first run's ``n_links`` metadata (every simulator
    passes it to :meth:`begin_run`), so pool workers can be constructed
    from :func:`config` before any topology exists.
    """

    def __init__(self, window: int = 100, capacity: int = 256):
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.window = int(window)
        self.n_links = 0  # adopted from the first run's metadata
        self.runs: List[dict] = []
        self.n_windows = 0
        self._cap = int(capacity)
        self._col: Dict[str, np.ndarray] = {
            c: np.zeros(self._cap, dtype=np.int64) for c in ROW_COLS
        }
        self._mat: Optional[Dict[str, np.ndarray]] = None
        self._link_src: Optional[np.ndarray] = None
        self._link_dst: Optional[np.ndarray] = None
        self._next_index = 0  # window index within the current run

    # --------------------------------------------------------- recording
    def _adopt_links(self, n_links: int) -> None:
        n_links = int(n_links)
        if n_links < 1:
            raise ConfigurationError(f"n_links must be >= 1, got {n_links}")
        if self.n_links == 0:
            self.n_links = n_links
            self._mat = {
                c: np.zeros((self._cap, n_links), dtype=np.int64)
                for c in MATRIX_COLS
            }
        elif n_links != self.n_links:
            raise ConfigurationError(
                f"linkstate recorder tracks {self.n_links} links; a run "
                f"with {n_links} links cannot share it"
            )

    def begin_run(self, **meta) -> int:
        """Register one simulator run; returns its run id.

        ``meta`` must include ``n_links``; the first run fixes the
        recorder's link count and later runs must match it.
        """
        if "n_links" not in meta:
            raise ConfigurationError("linkstate run metadata needs n_links")
        self._adopt_links(meta["n_links"])
        self.runs.append(dict(meta))
        self._next_index = 0
        return len(self.runs) - 1

    def set_link_endpoints(self, src, dst) -> None:
        """Record (or re-validate) the per-link endpoint tables."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ConfigurationError("link endpoint tables must be equal-length 1-D")
        if self._link_src is None:
            self._link_src = src.copy()
            self._link_dst = dst.copy()
        elif not (
            np.array_equal(self._link_src, src)
            and np.array_equal(self._link_dst, dst)
        ):
            raise ConfigurationError(
                "linkstate recorder already holds different link endpoints "
                "(one recorder tracks one topology)"
            )

    def _grow_to(self, rows: int) -> None:
        if rows <= self._cap:
            return
        cap = self._cap
        while cap < rows:
            cap *= 2
        for c, arr in self._col.items():
            grown = np.zeros(cap, dtype=np.int64)
            grown[: self._cap] = arr
            self._col[c] = grown
        if self._mat is not None:
            for c, arr in self._mat.items():
                grown = np.zeros((cap, self.n_links), dtype=np.int64)
                grown[: self._cap] = arr
                self._mat[c] = grown
        self._cap = cap

    def record_window(
        self,
        run: int,
        *,
        start: int,
        cycles: int,
        forwarded: Sequence[int],
        credit_stalls: Sequence[int],
        peak_occupancy: Sequence[int],
    ) -> None:
        """Append one dense window row (the simulator calls this at flush)."""
        if self._mat is None:
            raise ConfigurationError("record_window before begin_run")
        row = self.n_windows
        self._grow_to(row + 1)
        col = self._col
        col["run"][row] = run
        col["index"][row] = self._next_index
        self._next_index += 1
        col["start"][row] = start
        col["cycles"][row] = cycles
        for name, vals in (
            ("forwarded", forwarded),
            ("credit_stalls", credit_stalls),
            ("peak_occupancy", peak_occupancy),
        ):
            arr = np.asarray(vals, dtype=np.int64)
            if arr.shape != (self.n_links,):
                raise ConfigurationError(
                    f"{name} has shape {arr.shape}, expected ({self.n_links},)"
                )
            self._mat[name][row] = arr
        self.n_windows += 1

    # --------------------------------------------------- snapshot / merge
    def snapshot(self) -> dict:
        """Everything recorded so far as a plain dict of numpy arrays.

        Buffer capacity is deliberately excluded: a grown serial recorder
        and fresh per-worker recorders must snapshot identically.
        """
        n = self.n_windows
        snap = {
            "format": LINKSTATE_FORMAT,
            "window": self.window,
            "n_links": self.n_links,
            "n_runs": len(self.runs),
            "n_windows": n,
            "runs": [dict(r) for r in self.runs],
        }
        empty = np.zeros(0, dtype=np.int64)
        snap["link_src"] = (
            self._link_src.copy() if self._link_src is not None else empty
        )
        snap["link_dst"] = (
            self._link_dst.copy() if self._link_dst is not None else empty
        )
        for c in ROW_COLS:
            snap[f"ls_{c}"] = self._col[c][:n].copy()
        for c in MATRIX_COLS:
            snap[f"ls_{c}"] = (
                self._mat[c][:n].copy()
                if self._mat is not None
                else np.zeros((0, 0), dtype=np.int64)
            )
        return snap

    def merge(self, snap: Mapping) -> None:
        """Fold a worker snapshot into this recorder.

        Run ids are offset past this recorder's runs, so merging per-cell
        snapshots in task order reproduces exactly the link state a
        serial run under one recorder would have recorded.
        """
        if snap.get("format") != LINKSTATE_FORMAT:
            raise ConfigurationError(
                f"cannot merge linkstate snapshot of format {snap.get('format')!r}"
            )
        if int(snap["window"]) != self.window:
            raise ConfigurationError(
                "cannot merge linkstate snapshots with different window "
                f"({snap['window']} vs {self.window})"
            )
        snap_links = int(snap.get("n_links", 0))
        if snap_links:
            self._adopt_links(snap_links)
        src = np.asarray(snap.get("link_src", ()), dtype=np.int64)
        if src.size:
            self.set_link_endpoints(src, snap["link_dst"])
        run_off = len(self.runs)
        self.runs.extend(dict(r) for r in snap["runs"])
        n = int(snap["n_windows"])
        if not n:
            return
        row = self.n_windows
        self._grow_to(row + n)
        for c in ROW_COLS:
            vals = np.asarray(snap[f"ls_{c}"], dtype=np.int64)
            if c == "run":
                vals = vals + run_off
            self._col[c][row : row + n] = vals
        for c in MATRIX_COLS:
            self._mat[c][row : row + n] = np.asarray(
                snap[f"ls_{c}"], dtype=np.int64
            )
        self.n_windows += n


# ------------------------------------------------------- persistence
def save_linkstate(path, snap: Optional[Mapping] = None):
    """Write a snapshot as a compressed ``.npz``; returns the path.

    With ``snap=None`` the active recorder's snapshot is written (a
    no-op returning ``None`` when the recorder is disabled).
    """
    from pathlib import Path

    if snap is None:
        snap = snapshot()
        if snap is None:
            return None
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = dict(snap)
    doc["runs"] = json.dumps(doc.get("runs", []))
    np.savez_compressed(path, **doc)
    return path


def load_linkstate(path) -> dict:
    """Load a :func:`save_linkstate` file back into snapshot form."""
    with np.load(path, allow_pickle=False) as data:
        snap = {}
        for key in data.files:
            arr = data[key]
            snap[key] = arr.item() if arr.ndim == 0 else arr
    snap["runs"] = json.loads(str(snap.get("runs", "[]")))
    for key in ("window", "n_links", "n_runs", "n_windows"):
        if key in snap:
            snap[key] = int(snap[key])
    snap["format"] = str(snap.get("format", ""))
    if snap["format"] != LINKSTATE_FORMAT:
        raise ConfigurationError(
            f"{path} is not a {LINKSTATE_FORMAT} file (format={snap['format']!r})"
        )
    return snap


# --------------------------------------------------------- module state
#: The process's active recorder, or ``None`` when link state is off.
#: The simulator reads this once at construction, exactly like
#: ``metrics._active`` / ``timeseries._active``.
_active: Optional[LinkstateRecorder] = None


def enable(window: int = 100, capacity: int = 256) -> LinkstateRecorder:
    """Install (and return) the process's active recorder."""
    global _active
    _active = LinkstateRecorder(window=window, capacity=capacity)
    return _active


def disable() -> None:
    """Turn the recorder off; simulators constructed after this pay nothing."""
    global _active
    _active = None


def enabled() -> bool:
    return _active is not None


def active() -> Optional[LinkstateRecorder]:
    return _active


def config() -> Optional[dict]:
    """The active recorder's construction parameters (for pool workers)."""
    rec = _active
    if rec is None:
        return None
    return {"window": rec.window}


@contextmanager
def capture(**kwargs) -> Iterator[LinkstateRecorder]:
    """Divert recording to a fresh recorder for the duration of the block.

    Pool workers scope one task's link state with this (parameterised by
    the parent's :func:`config`); the previous state is restored on exit.
    """
    global _active
    prev = _active
    fresh = LinkstateRecorder(**kwargs)
    _active = fresh
    try:
        yield fresh
    finally:
        _active = prev


def snapshot() -> Optional[dict]:
    """Snapshot of the active recorder, or ``None`` when disabled."""
    rec = _active
    return None if rec is None else rec.snapshot()


def merge_snapshot(snap: Optional[Mapping]) -> None:
    """Merge a worker snapshot into the active recorder (no-op if either
    side is absent)."""
    rec = _active
    if rec is not None and snap is not None:
        rec.merge(snap)
