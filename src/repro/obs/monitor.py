"""Live run monitor: worker heartbeats in, an in-place dashboard out.

Long grids (`run_saturation_grid`) and path precomputes
(`PathCache.precompute_parallel`) run for minutes across a process pool
with nothing but a final answer at the end.  This module adds a live
view: workers post small heartbeat dicts — task started, window sample
(throughput + latency from the time-series recorder's ``on_window``
hook), task done — and the parent's :class:`RunMonitor` folds them into
one state dict that :func:`repro.report.ascii.render_dashboard` turns
into an in-place ANSI dashboard (grid progress, throughput/latency
sparklines, per-worker status).  A watchdog flags workers whose last
heartbeat is older than ``stale_after`` seconds — the symptom of a hung
or died worker that a silent pool would hide until the end of time.

Transport is deliberately boring: a ``multiprocessing.Manager`` queue
(its proxy pickles through pool initializers; a raw ``mp.Queue`` does
not), created lazily so inline runs never pay for a manager process —
``processes=1`` paths hand workers the monitor's :meth:`RunMonitor.post`
callable directly.  :class:`Heartbeater` is the worker-side half:
rate-limited, and **never** raises — a dead monitor must not kill a
multi-minute simulation.

Module state mirrors ``metrics``/``trace``/``timeseries``: one optional
active monitor per process (:func:`enable` / :func:`disable`), and the
parallel entry points test ``active() is not None`` once per call.
"""

from __future__ import annotations

import math
import sys
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Mapping, Optional, Union

from repro.obs import log

__all__ = [
    "Heartbeater",
    "RunMonitor",
    "enable",
    "disable",
    "enabled",
    "active",
]

#: A heartbeat sink: a queue-like object with ``put_nowait`` (pool
#: workers) or a plain callable (inline runs).
Sink = Union[Callable[[dict], None], object]


class Heartbeater:
    """Worker-side heartbeat emitter.

    Window samples are rate-limited to one per ``min_interval`` seconds
    (a small simulation can close thousands of windows per second);
    task-start/task-done beats always go through.  Every post swallows
    every exception — monitoring must never break the monitored.
    """

    def __init__(self, sink: Sink, worker: int = 0, min_interval: float = 0.25):
        self._put = sink if callable(sink) else sink.put_nowait
        self.worker = int(worker)
        self.min_interval = float(min_interval)
        self._last = 0.0

    def _post(self, msg: dict, force: bool) -> None:
        # Forced beats (task start/done) bypass — and do not reset — the
        # rate limiter, so a short task cannot starve its window samples.
        if not force:
            now = time.monotonic()
            if now - self._last < self.min_interval:
                return
            self._last = now
        msg["worker"] = self.worker
        try:
            self._put(msg)
        except Exception:
            pass

    def task(self, label: str) -> None:
        """Announce the start of a task (always delivered)."""
        self._post({"kind": "task", "label": str(label)}, force=True)

    def done(self) -> None:
        """Announce task completion (always delivered)."""
        self._post({"kind": "done"}, force=True)

    def window(self, meta: Mapping, row: Mapping) -> None:
        """Forward one time-series window as a throughput/latency sample.

        Signature-compatible with
        :attr:`repro.obs.timeseries.TimeseriesRecorder.on_window`.
        """
        cycles = int(row.get("cycles", 0)) or 1
        hosts = max(1, int(meta.get("n_hosts", 1)))
        ejected = int(row.get("ejected", 0))
        rate = ejected / (cycles * hosts)
        lat = row["lat_sum"] / ejected if ejected else float("nan")
        self._post({"kind": "window", "rate": rate, "lat": lat}, force=False)


class RunMonitor:
    """Parent-side monitor: heartbeat aggregation + dashboard rendering.

    The render thread wakes every ``refresh`` seconds, drains the queue,
    runs the stale-worker watchdog, and redraws.  On an ANSI-capable
    stream the dashboard redraws in place; otherwise one plain summary
    line is printed at most every ``plain_interval`` seconds.
    """

    def __init__(
        self,
        stream=None,
        *,
        refresh: float = 0.5,
        stale_after: float = 15.0,
        history: int = 120,
        plain_interval: float = 5.0,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.refresh = float(refresh)
        self.stale_after = float(stale_after)
        self.plain_interval = float(plain_interval)
        self._lock = threading.Lock()
        self._state: dict = {
            "label": "",
            "total": 0,
            "done": 0,
            "started": time.monotonic(),
            "rates": deque(maxlen=int(history)),
            "lats": deque(maxlen=int(history)),
            "workers": {},
        }
        self._mgr = None
        self._queue = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._drawn_lines = 0
        self._last_plain = 0.0
        self._warned_stale: set = set()

    # ------------------------------------------------------------ wiring
    def queue(self):
        """The heartbeat queue for pool workers (created on first use).

        A ``multiprocessing.Manager().Queue()`` proxy — picklable through
        ``ProcessPoolExecutor`` initargs, unlike a raw ``mp.Queue``.
        """
        if self._queue is None:
            import multiprocessing

            self._mgr = multiprocessing.Manager()
            self._queue = self._mgr.Queue()
        return self._queue

    def post(self, msg: dict) -> None:
        """Inline sink: apply one heartbeat directly (no queue, no IPC)."""
        with self._lock:
            self._apply(msg)

    # ------------------------------------------------------- run control
    def begin(self, label: str, total: int) -> None:
        """Start (or retarget) the dashboard for a run of ``total`` tasks."""
        with self._lock:
            self._state["label"] = str(label)
            self._state["total"] = int(total)
            self._state["done"] = 0
            self._state["started"] = time.monotonic()
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="run-monitor", daemon=True
            )
            self._thread.start()

    def step(self, n: int = 1) -> None:
        """Count ``n`` completed tasks."""
        with self._lock:
            self._state["done"] += int(n)

    def finish(self) -> None:
        """Stop rendering, drain stragglers, leave a final dashboard."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._drain()
        self._render(final=True)
        if self._mgr is not None:
            self._mgr.shutdown()
            self._mgr = None
            self._queue = None

    # --------------------------------------------------------- internals
    def _apply(self, msg: Mapping) -> None:
        """Fold one heartbeat into the state (caller holds the lock)."""
        wid = int(msg.get("worker", 0))
        w = self._state["workers"].setdefault(
            wid,
            {
                "label": "",
                "rate": None,
                "lat": None,
                "beats": 0,
                "last": 0.0,
                "stale": False,
            },
        )
        w["beats"] += 1
        w["last"] = time.monotonic()
        if w["stale"]:
            w["stale"] = False
            self._warned_stale.discard(wid)
        kind = msg.get("kind")
        if kind == "task":
            w["label"] = str(msg.get("label", ""))
        elif kind == "done":
            w["label"] = "idle"
        elif kind == "window":
            rate = float(msg.get("rate", float("nan")))
            lat = float(msg.get("lat", float("nan")))
            w["rate"] = rate
            w["lat"] = lat
            self._state["rates"].append(rate)
            self._state["lats"].append(lat)

    def _drain(self) -> None:
        q = self._queue
        if q is None:
            return
        import queue as _queue

        while True:
            try:
                msg = q.get_nowait()
            except (_queue.Empty, EOFError, OSError):
                return
            with self._lock:
                self._apply(msg)

    def _check_stale(self, now: Optional[float] = None) -> List[int]:
        """Watchdog: mark (and log, once) workers with stale heartbeats."""
        now = time.monotonic() if now is None else now
        flagged = []
        with self._lock:
            for wid, w in self._state["workers"].items():
                age = now - w["last"]
                if w["last"] and age > self.stale_after and w["label"] != "idle":
                    w["stale"] = True
                    w["age"] = age
                    flagged.append(wid)
                    if wid not in self._warned_stale:
                        self._warned_stale.add(wid)
                        log.warning(
                            "monitor.stale_worker",
                            worker=wid,
                            age_s=round(age, 1),
                            task=w["label"],
                        )
        return flagged

    def _snapshot_state(self) -> dict:
        with self._lock:
            s = self._state
            return {
                "label": s["label"],
                "total": s["total"],
                "done": s["done"],
                "elapsed": time.monotonic() - s["started"],
                "rates": list(s["rates"]),
                "lats": list(s["lats"]),
                "workers": {k: dict(v) for k, v in s["workers"].items()},
            }

    def _render(self, final: bool = False) -> None:
        from repro.report.ascii import render_dashboard, supports_ansi, term_width

        state = self._snapshot_state()
        stream = self.stream
        ansi = supports_ansi(stream)
        if ansi:
            lines = render_dashboard(state, ansi=True, width=term_width())
            out = ""
            if self._drawn_lines:
                out += f"\x1b[{self._drawn_lines}F\x1b[J"  # up + clear below
            out += "\n".join(lines) + "\n"
            stream.write(out)
            stream.flush()
            self._drawn_lines = len(lines)
        else:
            now = time.monotonic()
            if not final and now - self._last_plain < self.plain_interval:
                return
            self._last_plain = now
            lines = render_dashboard(state, ansi=False, width=term_width())
            head = lines[0] if lines else ""
            stale = sum(1 for w in state["workers"].values() if w.get("stale"))
            if stale:
                head += f" · {stale} stale worker(s)"
            stream.write(head + "\n")
            stream.flush()

    def _loop(self) -> None:
        while not self._stop.wait(self.refresh):
            try:
                self._drain()
                self._check_stale()
                self._render()
            except Exception:  # a render glitch must not kill the run
                pass


# --------------------------------------------------------- module state
_active: Optional[RunMonitor] = None


def enable(**kwargs) -> RunMonitor:
    """Install (and return) the process's active monitor."""
    global _active
    _active = RunMonitor(**kwargs)
    return _active


def disable() -> None:
    """Tear the monitor down (stops its render thread if running)."""
    global _active
    mon = _active
    _active = None
    if mon is not None:
        mon.finish()


def enabled() -> bool:
    return _active is not None


def active() -> Optional[RunMonitor]:
    return _active
