"""Run manifests: one JSON document fully describing one experiment run.

A manifest ties together *what* ran (experiment id, scale, seed, config,
package version), *on what* (topology content hash, platform), *how long*
(wall time, per-stage timings) and *what happened* (the metric snapshot:
path-cache hit/miss counts, simulator flit/stall counters, per-link
utilization arrays).  Written by ``python -m repro.experiments ...
--telemetry-dir DIR`` as ``<experiment>-<scale>.manifest.json``.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Mapping, Optional

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_SCHEMA_VERSION",
    "topology_hash",
    "build_manifest",
    "write_manifest",
]

MANIFEST_FORMAT = "repro-manifest-v1"

#: Bump when manifest fields change shape; ``compare-runs`` refuses to
#: diff manifests across schema versions.  v3 added environment
#: provenance (host, cpu_count, numpy) for the run ledger.
MANIFEST_SCHEMA_VERSION = 3


@functools.lru_cache(maxsize=1)
def _git_commit() -> Optional[str]:
    """The repository's HEAD commit, or ``None`` outside a git checkout.

    Cached per process — HEAD cannot change under a running experiment,
    and a sweep writing dozens of manifests should not fork ``git`` for
    each one.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):  # pragma: no cover
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def topology_hash(topology) -> str:
    """SHA-256 content hash of the exact topology (parameters + adjacency).

    Matches the identity notion of the persistent path store: two
    Jellyfish instances hash equal iff their documents are identical.
    """
    from repro.topology.serialization import topology_to_dict

    blob = json.dumps(
        topology_to_dict(topology), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def build_manifest(
    *,
    experiment: str,
    scale: str,
    seed: int,
    config: Optional[Mapping] = None,
    wall_time_s: float,
    metrics_snapshot: Optional[Mapping] = None,
    steady_state: Optional[Mapping] = None,
    profile: Optional[str] = None,
) -> dict:
    """Assemble the manifest document (plain JSON-able dict).

    ``metrics_snapshot`` is a :meth:`MetricsRegistry.snapshot` document;
    its ``timers`` section becomes the manifest's stage timings and its
    ``info`` annotations (topology hash, labels) are lifted to the top
    level.  ``steady_state`` is a
    :func:`repro.obs.timeseries.steady_state_report` document: per-run
    warmup-sufficiency verdicts, recorded whenever the run collected time
    series.  ``profile`` is the path of a cProfile ``.pstats`` dump when
    the run was profiled (``--profile``), so the manifest records where
    the raw profile lives.
    """
    import numpy

    import repro

    snap = metrics_snapshot or {}
    doc = {
        "format": MANIFEST_FORMAT,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "experiment": experiment,
        "scale": scale,
        "seed": seed,
        "package_version": repro.__version__,
        "git_commit": _git_commit(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        # Environment provenance: ledger entries from different machines
        # must be distinguishable so trend baselines scope per host.
        "host": platform.node(),
        "cpu_count": os.cpu_count(),
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "wall_time_s": round(float(wall_time_s), 3),
        "config": dict(config or {}),
        "info": dict(snap.get("info", {})),
        "stage_timings": snap.get("timers", {}),
        "metrics": {
            "counters": snap.get("counters", {}),
            "gauges": snap.get("gauges", {}),
            "histograms": snap.get("histograms", {}),
            "arrays": snap.get("arrays", {}),
        },
    }
    if steady_state is not None:
        doc["steady_state"] = dict(steady_state)
    if profile is not None:
        doc["profile"] = str(profile)
    return doc


def write_manifest(doc: Mapping, directory, filename: Optional[str] = None) -> Path:
    """Write ``doc`` under ``directory`` atomically and return the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if filename is None:
        filename = (
            f"{doc.get('experiment', 'run')}-{doc.get('scale', 'na')}"
            ".manifest.json"
        )
    target = directory / filename
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, target)
    finally:
        if tmp.exists():  # pragma: no cover - crash-path hygiene
            tmp.unlink()
    return target
