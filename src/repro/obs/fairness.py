"""Flow-level SLO analysis: fairness, tail spread and victim-flow forensics.

:mod:`repro.obs.flowstats` records *what* every (src, dst) host pair
experienced; this module answers the paper-adjacent question multipath
rankings tend to bury: *which flows paid for the good average?*

- :func:`percentiles_from_hist` — exact percentiles from the integer
  latency histogram, reproducing ``np.percentile``'s linear
  interpolation bit-for-bit (the histogram has one bin per cycle value,
  so nothing is approximated);
- :func:`jain_index` — Jain's fairness index over per-pair delivered
  counts;
- :func:`pair_stats` / :func:`run_summary` — per-pair latency digests
  (delivered / mean / p50 / p99 / max) and the per-run fairness rollup;
- :func:`victim_pairs` — pairs whose p99 exceeds ``k`` times the run's
  median pair p99 (the flows a mean-only comparison would hide);
- :func:`victim_link_attribution` — joins victims against the
  link-state stall record to answer "which link is starving this pair";
- :func:`snapshot_gauges` — the derived scalars stamped into manifest
  gauges (worst-run Jain index, worst pair p99).

The CLI (``python -m repro.experiments flows <telemetry-dir>``) walks a
telemetry directory, pairs every ``*.flowstats.npz`` with its sibling
link-state artifact, prints the ASCII worst-pair tables and src-by-dst
p99 heatmaps and, with ``--html``, writes the self-contained report
(:func:`repro.report.export.flowstats_html`).  All outputs are pure
functions of the artifacts — byte-deterministic across processes.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.flowstats import FLOWSTATS_FORMAT, load_flowstats

__all__ = [
    "pair_label",
    "run_label",
    "percentiles_from_hist",
    "jain_index",
    "pair_stats",
    "run_summary",
    "victim_pairs",
    "match_run",
    "victim_link_attribution",
    "snapshot_gauges",
    "flowstats_report",
    "flow_docs",
    "main",
]


def pair_label(src: int, dst: int) -> str:
    """Human label of an ordered host pair."""
    return f"h{int(src)}->h{int(dst)}"


def run_label(snap: Mapping, run: int) -> str:
    """``scheme/mechanism @ rate`` label of run ``run`` of a snapshot."""
    runs = snap.get("runs", [])
    if not 0 <= run < len(runs):
        return f"run{run}"
    meta = runs[run]
    label = f"{meta.get('scheme', '?')}/{meta.get('mechanism', '?')}"
    rate = meta.get("rate")
    return f"{label} @ {rate:g}" if isinstance(rate, (int, float)) else label


def _check(snap: Mapping) -> None:
    if snap.get("format") != FLOWSTATS_FORMAT:
        raise ConfigurationError(
            f"not a {FLOWSTATS_FORMAT} snapshot (format={snap.get('format')!r})"
        )


# ----------------------------------------------------------- primitives
def percentiles_from_hist(
    bins: Sequence[int], counts: Sequence[int], qs: Sequence[float]
) -> List[float]:
    """Exact percentiles of histogrammed integers, matching np.percentile.

    ``bins`` are the (sorted, distinct) integer values and ``counts``
    their positive multiplicities.  Reconstructs the linear-interpolation
    rule over the implied sorted sample: rank ``r``'s value is the first
    bin whose cumulative count exceeds ``r``.
    """
    b = np.asarray(bins, dtype=np.int64)
    c = np.asarray(counts, dtype=np.int64)
    if b.size == 0:
        return [float("nan") for _ in qs]
    cum = np.cumsum(c)
    n = int(cum[-1])
    out = []
    for q in qs:
        pos = float(q) / 100.0 * (n - 1)
        lo = int(np.floor(pos))
        hi = int(np.ceil(pos))
        v_lo = float(b[np.searchsorted(cum, lo, side="right")])
        v_hi = float(b[np.searchsorted(cum, hi, side="right")])
        out.append(v_lo + (pos - lo) * (v_hi - v_lo))
    return out


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    Computed over the *positive* entries only: a pair that delivered
    nothing is starved rather than unfairly served — it shows up in the
    victim/tail analysis, not as a zero dragging the index.  ``nan``
    when nothing was delivered at all.
    """
    x = np.asarray(values, dtype=np.float64)
    x = x[x > 0]
    if not x.size:
        return float("nan")
    s = float(x.sum())
    return s * s / (x.size * float((x * x).sum()))


# ------------------------------------------------------------ per-run views
def _pair_ends(snap: Mapping, pair: int) -> tuple:
    src = np.asarray(snap.get("pair_src", ()), dtype=np.int64)
    if src.size:
        return int(src[pair]), int(np.asarray(snap["pair_dst"])[pair])
    n = int(snap["n_hosts"])
    return pair // n, pair % n


def pair_stats(snap: Mapping, run: int) -> List[dict]:
    """Per-pair latency digests for one run, in pair-id order.

    One entry per pair that delivered at least one measured packet:
    endpoints, delivered count, mean/p50/p99/max latency in cycles.
    Percentiles come from the exact histogram, so they equal
    ``np.percentile`` over the raw per-pair latencies.
    """
    _check(snap)
    if not 0 <= run < int(snap["n_runs"]):
        raise ConfigurationError(
            f"run {run} out of range (snapshot has {int(snap['n_runs'])} runs)"
        )
    delivered = np.asarray(snap["fs_delivered"], dtype=np.int64)[run]
    lat_sum = np.asarray(snap["fs_lat_sum"], dtype=np.int64)[run]
    lat_max = np.asarray(snap["fs_lat_max"], dtype=np.int64)[run]
    mask = np.asarray(snap["fs_run"], dtype=np.int64) == run
    h_pair = np.asarray(snap["fs_pair"], dtype=np.int64)[mask]
    h_bin = np.asarray(snap["fs_bin"], dtype=np.int64)[mask]
    h_count = np.asarray(snap["fs_count"], dtype=np.int64)[mask]
    out = []
    for pair in np.flatnonzero(delivered > 0).tolist():
        rows = h_pair == pair
        p50, p99 = percentiles_from_hist(h_bin[rows], h_count[rows], (50, 99))
        src, dst = _pair_ends(snap, pair)
        n = int(delivered[pair])
        out.append(
            {
                "pair": int(pair),
                "src": src,
                "dst": dst,
                "label": pair_label(src, dst),
                "delivered": n,
                "mean": float(lat_sum[pair]) / n,
                "p50": p50,
                "p99": p99,
                "max": int(lat_max[pair]),
            }
        )
    return out


def victim_pairs(
    stats: Sequence[Mapping], *, k: float = 2.0
) -> List[dict]:
    """The pairs whose p99 exceeds ``k`` times the run's median pair p99.

    ``stats`` is a :func:`pair_stats` result.  Victims are returned
    worst-first (ties on pair id) with the ``ratio`` to the median
    attached.  A run whose median p99 is zero has no meaningful spread
    to gauge against, so it yields no victims.
    """
    if k <= 0:
        raise ConfigurationError(f"victim threshold k must be > 0, got {k}")
    p99s = [float(s["p99"]) for s in stats]
    if not p99s:
        return []
    med = float(np.median(np.asarray(p99s)))
    if med <= 0:
        return []
    victims = [
        dict(s, ratio=float(s["p99"]) / med)
        for s in stats
        if float(s["p99"]) > k * med
    ]
    victims.sort(key=lambda v: (-v["p99"], v["pair"]))
    return victims


def run_summary(snap: Mapping, run: int, *, k: float = 2.0) -> dict:
    """One run's fairness rollup: Jain index, p99 spread, worst pair."""
    stats = pair_stats(snap, run)
    victims = victim_pairs(stats, k=k)
    p99s = np.asarray([s["p99"] for s in stats], dtype=np.float64)
    worst = max(stats, key=lambda s: (s["p99"], -s["pair"]), default=None)
    median_p99 = float(np.median(p99s)) if p99s.size else float("nan")
    return {
        "run": int(run),
        "label": run_label(snap, run),
        "pairs_active": len(stats),
        "delivered": int(sum(s["delivered"] for s in stats)),
        "jain": jain_index([s["delivered"] for s in stats]),
        "median_p99": median_p99,
        "worst": worst,
        "spread": (
            float(worst["p99"]) / median_p99
            if worst is not None and median_p99 > 0
            else float("nan")
        ),
        "victims": victims,
    }


def snapshot_gauges(snap: Mapping, *, k: float = 2.0) -> Dict[str, float]:
    """The snapshot's derived manifest gauges (worst run wins).

    ``netsim.fairness_jain`` is the *minimum* Jain index across runs and
    ``netsim.worst_pair_p99`` the *maximum* per-pair p99 — both pick the
    worst run, matching the max-merge semantics of registry gauges.
    """
    _check(snap)
    jains, worst = [], []
    for run in range(int(snap["n_runs"])):
        summary = run_summary(snap, run, k=k)
        if summary["worst"] is None:
            continue
        jains.append(summary["jain"])
        worst.append(float(summary["worst"]["p99"]))
    out: Dict[str, float] = {}
    if jains:
        out["netsim.fairness_jain"] = float(min(jains))
        out["netsim.worst_pair_p99"] = float(max(worst))
    return out


# ----------------------------------------------- victim -> link attribution
def match_run(snap: Mapping, run: int, other: Mapping) -> Optional[int]:
    """The run of ``other`` (a linkstate/trace snapshot) matching ``run``.

    Positional match when both snapshots recorded the same run sequence
    (meta agrees on scheme/mechanism/rate); otherwise the unique run of
    ``other`` with matching metadata, or ``None``.
    """
    meta = snap.get("runs", [])[run]
    others = other.get("runs", [])
    keys = ("scheme", "mechanism", "rate")
    if len(others) == len(snap.get("runs", [])) and 0 <= run < len(others):
        if all(others[run].get(c) == meta.get(c) for c in keys):
            return run
    hits = [
        i
        for i, m in enumerate(others)
        if all(m.get(c) == meta.get(c) for c in keys)
    ]
    return hits[0] if len(hits) == 1 else None


def victim_link_attribution(
    victims: Sequence[Mapping], ls_snap: Mapping, ls_run: int
) -> List[dict]:
    """Join victim pairs against the link-state stall record.

    For each victim the join reports the credit stalls charged to the
    victim's *injection link* (the source host could not launch) and the
    run's dominant stalled link overall (the congested core the
    backpressure tree would root at) — together they answer "which link
    is starving this pair".
    """
    from repro.obs.forensics import rank_stalled_links, run_windows

    w = run_windows(ls_snap, ls_run)
    stalls = (
        w["credit_stalls"].sum(axis=0)
        if w["credit_stalls"].size
        else np.zeros(int(ls_snap["n_links"]), dtype=np.int64)
    )
    link_src = np.asarray(ls_snap["link_src"], dtype=np.int64)
    ranked = rank_stalled_links(ls_snap, ls_run, top=1)
    suspect = ranked[0] if ranked else None
    out = []
    for v in victims:
        inj = np.flatnonzero(link_src == -1 - int(v["src"]))
        out.append(
            {
                "pair": int(v["pair"]),
                "label": str(v["label"]),
                "injection_stalls": (
                    int(stalls[inj[0]]) if inj.size else 0
                ),
                "suspect": (
                    {
                        "label": suspect["label"],
                        "credit_stalls": suspect["credit_stalls"],
                        "share": suspect["share"],
                    }
                    if suspect is not None
                    else None
                ),
            }
        )
    return out


# ----------------------------------------------------------- ASCII report
def _heat_grid(
    snap: Mapping, run: int, stats: Sequence[Mapping], *, max_rows: int
) -> tuple:
    """(row labels, int rows) of the src-by-dst p99 heatmap, hottest srcs."""
    n = int(snap["n_hosts"])
    grid = np.zeros((n, n), dtype=np.int64)
    for s in stats:
        grid[int(s["src"]), int(s["dst"])] = int(round(float(s["p99"])))
    per_src = grid.max(axis=1)
    order = np.lexsort((np.arange(n), -per_src))[:max_rows]
    rows = [int(r) for r in order if per_src[r] > 0]
    rows.sort()
    return [f"h{r}" for r in rows], [grid[r].tolist() for r in rows]


def flowstats_report(
    snap: Mapping,
    *,
    linkstate: Optional[Mapping] = None,
    run: Optional[int] = None,
    top: int = 8,
    k: float = 2.0,
    title: str = "flow-level SLOs",
) -> str:
    """The full ASCII flow deep dive of one flowstats snapshot.

    Per run: the fairness summary line, the worst-pair table, the victim
    list (joined against the link-state stall record when available)
    and the src-by-dst p99 heatmap.  Pure function of the snapshots —
    byte-deterministic.
    """
    from repro.report.ascii import (
        fairness_table,
        flow_pair_table,
        linkstate_heatmap,
    )

    _check(snap)
    n_runs = int(snap["n_runs"])
    lines = [
        f"{title}: {n_runs} run(s), {int(snap['n_hosts'])} hosts "
        f"({int(snap['n_pairs'])} pairs), exact {int(snap['n_bins'])}-bin "
        "latency histograms"
    ]
    run_ids = list(range(n_runs)) if run is None else [run]
    summaries = {r: run_summary(snap, r, k=k) for r in run_ids}
    if len(run_ids) > 1:
        lines.append("")
        lines.append(fairness_table([summaries[r] for r in run_ids]))
    for r in run_ids:
        summary = summaries[r]
        stats = pair_stats(snap, r)
        lines.append("")
        lines.append(
            f"== run {r}: {summary['label']} — {summary['delivered']} "
            f"measured packets over {summary['pairs_active']} pairs"
        )
        if summary["worst"] is None:
            lines.append("   (no measured deliveries)")
            continue
        lines.append(
            f"   fairness (Jain) {summary['jain']:.4f}; pair p99 median "
            f"{summary['median_p99']:.1f}, worst "
            f"{summary['worst']['p99']:.1f} cycles "
            f"({summary['worst']['label']}, spread {summary['spread']:.2f}x)"
        )
        worst_rows = sorted(
            stats, key=lambda s: (-s["p99"], s["pair"])
        )[:top]
        victims = summary["victims"]
        victim_ids = {v["pair"] for v in victims}
        lines.append("")
        lines.append(flow_pair_table(worst_rows, victim_ids=victim_ids))
        if victims:
            lines.append("")
            lines.append(
                f"   victim pairs (p99 > {k:g}x median): "
                f"{len(victims)}"
            )
            attribution = None
            if linkstate is not None:
                ls_run = match_run(snap, r, linkstate)
                if ls_run is not None:
                    attribution = {
                        a["pair"]: a
                        for a in victim_link_attribution(
                            victims[:top], linkstate, ls_run
                        )
                    }
            for v in victims[:top]:
                line = (
                    f"     {v['label']}: p99 {v['p99']:.1f} "
                    f"({v['ratio']:.2f}x median), "
                    f"{v['delivered']} delivered"
                )
                a = attribution.get(v["pair"]) if attribution else None
                if a is not None:
                    line += (
                        f" — injection stalls {a['injection_stalls']}"
                    )
                    if a["suspect"] is not None:
                        line += (
                            f", top stalled link {a['suspect']['label']} "
                            f"({100.0 * a['suspect']['share']:.1f}% of "
                            "stalls)"
                        )
                lines.append(line)
        else:
            lines.append("")
            lines.append(f"   no victim pairs (p99 > {k:g}x median)")
        labels, rows = _heat_grid(snap, r, stats, max_rows=top)
        if rows:
            lines.append("")
            lines.append(
                linkstate_heatmap(
                    rows,
                    labels,
                    title="   pair p99 latency by destination host "
                    "(hottest source hosts)",
                    axis="dst host",
                )
            )
    return "\n".join(lines)


# ------------------------------------------------------------- HTML input
def flow_docs(
    snap: Mapping,
    *,
    name: str = "flowstats",
    linkstate: Optional[Mapping] = None,
    top: int = 8,
    k: float = 2.0,
) -> dict:
    """Prepare one snapshot's plain-data document for the HTML renderer.

    Everything :func:`repro.report.export.flowstats_html` needs, as
    JSON-able plain structures — the renderer stays a pure template.
    """
    _check(snap)
    runs = []
    for r in range(int(snap["n_runs"])):
        summary = run_summary(snap, r, k=k)
        stats = pair_stats(snap, r)
        worst_rows = sorted(stats, key=lambda s: (-s["p99"], s["pair"]))[:top]
        victims = summary["victims"]
        attribution = []
        if victims and linkstate is not None:
            ls_run = match_run(snap, r, linkstate)
            if ls_run is not None:
                attribution = victim_link_attribution(
                    victims[:top], linkstate, ls_run
                )
        labels, rows = _heat_grid(snap, r, stats, max_rows=top)
        runs.append(
            {
                "run": r,
                "label": summary["label"],
                "meta": dict(snap["runs"][r]),
                "pairs_active": summary["pairs_active"],
                "delivered": summary["delivered"],
                "jain": summary["jain"],
                "median_p99": summary["median_p99"],
                "spread": summary["spread"],
                "worst": summary["worst"],
                "worst_rows": worst_rows,
                "victims": victims[:top],
                "victim_total": len(victims),
                "attribution": attribution,
                "heat_labels": labels,
                "heat_rows": rows,
                "k": float(k),
            }
        )
    return {
        "name": name,
        "n_hosts": int(snap["n_hosts"]),
        "n_pairs": int(snap["n_pairs"]),
        "n_bins": int(snap["n_bins"]),
        "n_runs": int(snap["n_runs"]),
        "runs": runs,
    }


# ------------------------------------------------------------------- CLI
def main(argv=None) -> int:
    """``flows`` entry point (``python -m repro.experiments flows``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments flows",
        description="Flow-level SLO observatory over recorded per-pair "
        "telemetry: fairness indices, tail-latency spread, victim-pair "
        "detection and an optional self-contained HTML report.",
    )
    parser.add_argument(
        "path",
        help="telemetry directory (every *.flowstats.npz in it) or one "
        ".flowstats.npz file",
    )
    parser.add_argument(
        "--run", type=int, default=None, metavar="N",
        help="inspect only run N of each snapshot (default: all runs)",
    )
    parser.add_argument(
        "--top", type=int, default=8, metavar="K",
        help="pairs per table/heatmap (default: 8)",
    )
    parser.add_argument(
        "--k", type=float, default=2.0, metavar="X",
        help="victim threshold: pairs whose p99 exceeds X times the run "
        "median (default: 2.0)",
    )
    parser.add_argument(
        "--html", default=None, metavar="OUT",
        help="also write the self-contained HTML flow report to OUT",
    )
    args = parser.parse_args(argv)
    if args.top < 1:
        parser.error("--top must be >= 1")
    if args.k <= 0:
        parser.error("--k must be > 0")

    root = Path(args.path)
    if root.is_file():
        files = [root]
    elif root.is_dir():
        files = sorted(root.glob("*.flowstats.npz"))
    else:
        print(f"flows: {root} does not exist")
        return 2
    if not files:
        print(f"flows: no *.flowstats.npz artifacts under {root}")
        return 2

    docs = []
    for path in files:
        snap = load_flowstats(path)
        stem = path.name[: -len(".flowstats.npz")]
        ls = _sibling_linkstate(path, stem)
        print(
            flowstats_report(
                snap,
                linkstate=ls,
                run=args.run,
                top=args.top,
                k=args.k,
                title=f"flow-level SLOs [{stem}]",
            )
        )
        print()
        docs.append(
            flow_docs(
                snap, name=stem, linkstate=ls, top=args.top, k=args.k
            )
        )
    if args.html is not None:
        from repro.report.export import flowstats_html

        out = Path(args.html)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(flowstats_html(docs))
        print(f"# flow report: {out}")
    return 0


def _sibling_linkstate(path: Path, stem: str) -> Optional[dict]:
    """Load the sibling link-state artifact, or None if absent."""
    sib = path.with_name(stem + ".linkstate.npz")
    if not sib.exists():
        return None
    try:
        from repro.obs.linkstate import load_linkstate

        return load_linkstate(sib)
    except (ConfigurationError, OSError, ValueError):
        return None
