"""Per-task progress reporting for long fan-out loops.

A :class:`Progress` wraps a completed/total counter and emits rate-limited
``progress`` events at ``info`` level (visible with ``--log-level info``),
including percentage done and an ETA extrapolated from the observed rate.
The first and last steps always log, so short runs still show start/end.
"""

from __future__ import annotations

import time

from repro.obs import log

__all__ = ["Progress", "format_eta"]


def format_eta(seconds: float) -> str:
    """``h:mm:ss`` above one hour, ``m:ss`` below (``"3:20:00"``, ``"0:45"``)."""
    s = max(0, int(round(seconds)))
    h, rem = divmod(s, 3600)
    m, sec = divmod(rem, 60)
    if h:
        return f"{h}:{m:02d}:{sec:02d}"
    return f"{m}:{sec:02d}"


class Progress:
    """Track ``completed/total`` work items and log progress with an ETA.

    Parameters
    ----------
    total:
        Number of work items expected.
    label:
        Short identifier included in every record (e.g. ``"precompute"``).
    min_interval:
        Minimum seconds between two progress records (rate limiting); the
        final record is always emitted.
    """

    def __init__(self, total: int, label: str, *, min_interval: float = 1.0):
        self.total = int(total)
        self.label = label
        self.done = 0
        self._t0 = time.monotonic()
        self._last_log = -float("inf")
        self._min_interval = float(min_interval)

    def step(self, n: int = 1) -> None:
        """Mark ``n`` more items complete, logging if due."""
        self.done += n
        now = time.monotonic()
        if self.done < self.total and now - self._last_log < self._min_interval:
            return
        self._last_log = now
        elapsed = now - self._t0
        remaining = max(0, self.total - self.done)
        # ETA only once there is a measurable rate: the first step() can
        # land with zero elapsed time (coarse clocks) or zero completed
        # work, either of which would extrapolate to inf/nan.
        eta = None
        if remaining == 0:
            eta = 0.0
        elif elapsed > 0 and self.done > 0:
            eta = remaining * elapsed / self.done
        log.info(
            "progress",
            label=self.label,
            completed=self.done,
            total=self.total,
            pct=round(100.0 * self.done / self.total, 1) if self.total else 100.0,
            elapsed_s=round(elapsed, 2),
            eta_s=None if eta is None else round(eta, 2),
            eta=None if eta is None else format_eta(eta),
        )
