"""Cross-run regression diffing of run manifests.

PR 2's manifests record what a run did (stage timings, metric snapshot);
this module makes them *enforceable*: :func:`compare_manifests` diffs two
manifests with configurable relative thresholds, and the CLI entry point
(``python -m repro.experiments compare-runs A.manifest.json
B.manifest.json``) exits non-zero on regression so CI can gate on it.

What is compared:

- **stage timings** — each span's total seconds; a stage that got slower
  by more than ``timing_threshold`` (and whose baseline total is above
  the ``min_seconds`` noise floor) is a gating regression;
- **metric counters** — relative drift in either direction; gated only
  when ``metric_threshold`` is given (counters are deterministic for a
  fixed seed, so a drift gate doubles as a reproducibility check);
- **wall time** — reported, never gated (too noisy across machines);
- **SLO gauges** — the latency/fairness scalars
  (``netsim.latency_p50/p99``, ``netsim.mean_latency``,
  ``netsim.fairness_jain``, ``netsim.worst_pair_p99``) are surfaced as
  report-only deltas alongside the engine-throughput gauges; their
  regression gate lives in the N-run trend analysis
  (:mod:`repro.obs.trend`), where a noise floor makes sense.

Simulator runs additionally stamp their engine into the manifest (the
``netsim.engine_runs/<engine>`` counters and the
``netsim.cycles_per_sec/<engine>`` gauges).  When the two manifests ran
*different* engine sets — any mismatch among the ``reference``, ``fast``
and ``batched`` tiers, including a batched grid whose fallback cells add
``fast`` alongside ``batched`` — their timings measure different
implementations, so timing regressions are reported but **not gated**
and the diff carries an explicit cross-engine note: a fast-engine
baseline can never silently flag the reference engine (or the batched
multi-lane tier) as a performance regression, or vice versa.  Counters
still gate as usual: all engine tiers are byte-equivalent, so counter
drift across engines is a real reproducibility failure, not noise.

Manifests from different schema versions refuse to diff with a clear
:class:`~repro.errors.ComparisonError` rather than producing a silently
meaningless comparison.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Mapping, Optional

from repro.errors import ComparisonError

__all__ = [
    "Delta",
    "ManifestDiff",
    "compare_manifests",
    "engines_of",
    "load_manifest",
    "main",
]


@dataclass(frozen=True)
class Delta:
    """One compared quantity of the two manifests."""

    kind: str        # "timing" | "counter" | "wall"
    name: str
    base: float
    new: float
    regression: bool

    @property
    def ratio(self) -> float:
        if self.base > 0:
            return self.new / self.base
        return float("inf") if self.new > 0 else 1.0


@dataclass
class ManifestDiff:
    """The full comparison: every delta plus the gating subset."""

    deltas: List[Delta] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)  # in base, not in new
    notes: List[str] = field(default_factory=list)    # e.g. cross-engine

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regression]

    def render(self) -> str:
        lines = [f"NOTE: {note}" for note in self.notes]
        lines.append(
            f"{'quantity':44s} {'base':>12s} {'new':>12s} {'delta':>8s}"
        )
        for d in self.deltas:
            delta = 100.0 * (d.ratio - 1.0) if d.base > 0 else float("inf")
            flag = "  REGRESSION" if d.regression else ""
            lines.append(
                f"{d.kind + ':' + d.name:44s} {d.base:12.4f} {d.new:12.4f}"
                f" {delta:+7.1f}%{flag}"
            )
        if self.missing:
            lines.append(f"not in new manifest: {', '.join(self.missing)}")
        n = len(self.regressions)
        lines.append(
            f"{n} regression(s)" if n else "no regressions"
        )
        return "\n".join(lines)


#: Counter prefix that stamps which simulator engine(s) a run used.
_ENGINE_PREFIX = "netsim.engine_runs/"
#: Gauge prefix reporting each engine's peak cycles/second for the run.
_CPS_PREFIX = "netsim.cycles_per_sec/"

#: Latency/fairness SLO gauges surfaced in the diff (report-only here;
#: the N-run trend gate owns their regression thresholds).
_SLO_PREFIXES = (
    "netsim.latency_",
    "netsim.mean_latency",
    "netsim.fairness_jain",
    "netsim.worst_pair_p99",
)


def engines_of(manifest: Mapping) -> frozenset:
    """The simulator engines a manifest's run used (empty if none)."""
    counters = manifest.get("metrics", {}).get("counters", {})
    return frozenset(
        name[len(_ENGINE_PREFIX):]
        for name, count in counters.items()
        if name.startswith(_ENGINE_PREFIX) and count
    )


def _check_comparable(base: Mapping, new: Mapping) -> None:
    for key in ("format", "schema_version"):
        a, b = base.get(key), new.get(key)
        if a != b:
            raise ComparisonError(
                f"manifests are not comparable: {key} {a!r} != {b!r} "
                "(regenerate the baseline with this package version)"
            )


def compare_manifests(
    base: Mapping,
    new: Mapping,
    *,
    timing_threshold: float = 0.25,
    metric_threshold: Optional[float] = None,
    min_seconds: float = 0.05,
) -> ManifestDiff:
    """Diff two manifest documents; see the module docstring for gating."""
    _check_comparable(base, new)
    diff = ManifestDiff()

    base_engines = engines_of(base)
    new_engines = engines_of(new)
    cross_engine = (
        bool(base_engines) and bool(new_engines)
        and base_engines != new_engines
    )
    if cross_engine:
        diff.notes.append(
            "cross-engine comparison (base: "
            f"{', '.join(sorted(base_engines))}; new: "
            f"{', '.join(sorted(new_engines))}) — timings measure "
            "different simulator cores and are not gated"
        )

    diff.deltas.append(
        Delta(
            "wall", "wall_time_s",
            float(base.get("wall_time_s", 0.0)),
            float(new.get("wall_time_s", 0.0)),
            regression=False,
        )
    )

    base_timings = base.get("stage_timings", {})
    new_timings = new.get("stage_timings", {})
    for name in sorted(base_timings):
        doc = base_timings[name]
        b = float(doc.get("total", 0.0))
        if name not in new_timings:
            diff.missing.append(f"timing:{name}")
            continue
        n = float(new_timings[name].get("total", 0.0))
        regressed = (
            not cross_engine
            and b >= min_seconds
            and n > b * (1.0 + timing_threshold)
        )
        diff.deltas.append(Delta("timing", name, b, n, regressed))

    base_gauges = base.get("metrics", {}).get("gauges", {})
    new_gauges = new.get("metrics", {}).get("gauges", {})
    for name in sorted(set(base_gauges) | set(new_gauges)):
        if not name.startswith((_CPS_PREFIX,) + _SLO_PREFIXES):
            continue
        # Engine throughput is provenance, not a gate: report it so a
        # cross-engine diff shows what each core actually sustained.
        # The latency/fairness SLO gauges ride along the same way — the
        # single-pair diff surfaces them; the N-run trend gate decides.
        diff.deltas.append(
            Delta(
                "gauge", name,
                float(base_gauges.get(name, 0.0)),
                float(new_gauges.get(name, 0.0)),
                regression=False,
            )
        )

    base_counters = base.get("metrics", {}).get("counters", {})
    new_counters = new.get("metrics", {}).get("counters", {})
    for name in sorted(base_counters):
        b = float(base_counters[name])
        if name not in new_counters:
            diff.missing.append(f"counter:{name}")
            continue
        n = float(new_counters[name])
        regressed = False
        if metric_threshold is not None:
            if b > 0:
                regressed = abs(n / b - 1.0) > metric_threshold
            else:
                regressed = n > 0
        diff.deltas.append(Delta("counter", name, b, n, regressed))

    return diff


def load_manifest(path) -> dict:
    """Read one manifest JSON, validating it looks like a manifest."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ComparisonError(f"cannot read manifest {path}: {exc}") from exc
    fmt = doc.get("format", "")
    if not isinstance(fmt, str) or not fmt.startswith("repro-manifest"):
        raise ComparisonError(
            f"{path} is not a run manifest (format={fmt!r})"
        )
    return doc


def main(argv=None) -> int:
    """CLI: diff two manifests, exit 1 on regression, 2 on refusal."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments compare-runs",
        description="Diff two run manifests and fail on regression.",
    )
    parser.add_argument("base", type=Path, help="baseline manifest JSON")
    parser.add_argument("new", type=Path, help="manifest JSON to check")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="max allowed relative stage-timing slowdown (default 0.25)",
    )
    parser.add_argument(
        "--metric-threshold", type=float, default=None,
        help="gate metric counters drifting more than this fraction in "
        "either direction (default: report only)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="ignore timing regressions on stages whose baseline total is "
        "below this noise floor (default 0.05s)",
    )
    args = parser.parse_args(argv)

    try:
        base = load_manifest(args.base)
        new = load_manifest(args.new)
        diff = compare_manifests(
            base, new,
            timing_threshold=args.threshold,
            metric_threshold=args.metric_threshold,
            min_seconds=args.min_seconds,
        )
    except ComparisonError as exc:
        print(f"compare-runs: {exc}", file=sys.stderr)
        return 2

    print(f"baseline: {args.base}")
    print(f"new:      {args.new}\n")
    print(diff.render())
    return 1 if diff.regressions else 0


if __name__ == "__main__":
    sys.exit(main())
