"""Per-(src, dst)-pair flow telemetry for the flit-level simulator.

The link-state record (:mod:`repro.obs.linkstate`) attributes congestion
to *links*; this module resolves the complementary axis: *flows*.  For
every ordered (source host, destination host) pair of a run it keeps

- ``delivered`` — measured packets ejected for the pair;
- ``lat_sum`` / ``lat_max`` — the pair's total and worst measured
  latency in cycles (``lat_max`` is ``-1`` for pairs that delivered
  nothing);
- an **exact latency histogram** — one bin per integer cycle value, the
  bin count fixed per run from the warmup+measure budget
  (:func:`latency_bins`), so per-pair percentiles reconstructed from the
  histogram equal ``np.percentile`` over the raw latencies and merging
  shards never loses resolution.  The histogram is stored sparsely
  (``(run, pair, bin, count)`` coordinate rows sorted by key), because
  the dense ``runs x pairs x bins`` cube is almost entirely zeros.

The same three design rules as ``metrics``/``trace``/``linkstate``:

- **Module state, NOOP off.**  One active recorder per process
  (:func:`enable` / :func:`capture`); simulators read :func:`active`
  once at construction and pay nothing when it is ``None``.
- **Task-order merge.**  Worker snapshots merge with run-id offsets
  (:meth:`FlowstatsRecorder.merge`), so a parallel or batched-lane
  ``run_saturation_grid`` produces the byte-identical flow record of a
  serial run under one recorder.
- **``.npz`` persistence** next to the run manifest
  (:func:`save_flowstats` / :func:`load_flowstats`).

Engines do not tally anything themselves: they hand the recorder the raw
measured ``(pair id, latency)`` streams once per run
(:meth:`FlowstatsRecorder.record_run`), and the recorder computes the
canonical columns in one shared vectorized pass — cross-engine byte
identity by construction.  Pair ids are dense: ``src * n_hosts + dst``
over all ordered host pairs, with the endpoint tables (``pair_src`` /
``pair_dst``) carried in the snapshot so the analysis layer
(:mod:`repro.obs.fairness`) never needs the topology back.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "FLOWSTATS_FORMAT",
    "PAIR_COLS",
    "HIST_COLS",
    "FlowstatsRecorder",
    "latency_bins",
    "pair_endpoints",
    "enable",
    "disable",
    "enabled",
    "active",
    "capture",
    "config",
    "snapshot",
    "merge_snapshot",
    "save_flowstats",
    "load_flowstats",
]

FLOWSTATS_FORMAT = "repro-flowstats-v1"

#: Dense per-pair columns, one ``(n_runs, n_pairs)`` int64 matrix each.
PAIR_COLS = ("delivered", "lat_sum", "lat_max")

#: Sparse histogram coordinate columns, sorted by (run, pair, bin).
HIST_COLS = ("run", "pair", "bin", "count")


def latency_bins(config) -> int:
    """The exact-histogram bin count implied by a run's cycle budget.

    A measured latency is recorded at ejection inside the measurement
    window, so it is strictly below ``warmup_used + measure_cycles``;
    under ``steady_state`` run control the warmup may auto-extend up to
    ``max(warmup_cycles, max_warmup_cycles) + steady_window_cycles``.
    One bin per integer cycle value up to that bound keeps percentiles
    exact and makes the bin count a pure function of the config — every
    engine tier derives the identical histogram shape.
    """
    warmup = int(config.warmup_cycles)
    if getattr(config, "steady_state", False):
        warmup = (
            max(warmup, int(config.max_warmup_cycles))
            + int(config.steady_window_cycles)
        )
    return warmup + int(config.measure_cycles)


def pair_endpoints(n_hosts: int) -> Dict[str, np.ndarray]:
    """Endpoint tables for every ordered host pair, in pair-id order.

    Pair id ``src * n_hosts + dst`` over all ``n_hosts ** 2`` ordered
    pairs (self-pairs included — no traffic pattern targets them, so
    their rows stay zero and the id arithmetic stays trivial).
    """
    n = int(n_hosts)
    if n < 1:
        raise ConfigurationError(f"n_hosts must be >= 1, got {n_hosts}")
    hosts = np.arange(n, dtype=np.int64)
    return {
        "pair_src": np.repeat(hosts, n),
        "pair_dst": np.tile(hosts, n),
    }


class FlowstatsRecorder:
    """Columnar per-pair flow store fed once per simulator run.

    The pair count, bin count and host count are not constructor
    parameters: the recorder adopts them from the first run's metadata
    (every simulator passes ``n_hosts`` / ``n_pairs`` / ``n_bins`` to
    :meth:`begin_run`), so pool workers can be constructed from
    :func:`config` before any topology exists.
    """

    def __init__(self):
        self.n_hosts = 0  # adopted from the first run's metadata
        self.n_pairs = 0
        self.n_bins = 0
        self.runs: List[dict] = []
        # One (n_pairs,) int64 vector per run, per dense column.
        self._delivered: List[np.ndarray] = []
        self._lat_sum: List[np.ndarray] = []
        self._lat_max: List[np.ndarray] = []
        # Per-run sparse histogram rows, each sorted by (pair, bin).
        self._hist_pair: List[np.ndarray] = []
        self._hist_bin: List[np.ndarray] = []
        self._hist_count: List[np.ndarray] = []
        self._pair_src: Optional[np.ndarray] = None
        self._pair_dst: Optional[np.ndarray] = None

    # --------------------------------------------------------- recording
    def _adopt_shape(self, n_hosts: int, n_pairs: int, n_bins: int) -> None:
        n_hosts, n_pairs, n_bins = int(n_hosts), int(n_pairs), int(n_bins)
        if n_pairs < 1 or n_bins < 1 or n_hosts < 1:
            raise ConfigurationError(
                "flowstats run metadata needs positive n_hosts/n_pairs/"
                f"n_bins, got {n_hosts}/{n_pairs}/{n_bins}"
            )
        if self.n_pairs == 0:
            self.n_hosts = n_hosts
            self.n_pairs = n_pairs
            self.n_bins = n_bins
        elif (n_hosts, n_pairs, n_bins) != (
            self.n_hosts, self.n_pairs, self.n_bins
        ):
            raise ConfigurationError(
                f"flowstats recorder tracks {self.n_hosts} hosts / "
                f"{self.n_pairs} pairs / {self.n_bins} bins; a run with "
                f"{n_hosts}/{n_pairs}/{n_bins} cannot share it"
            )

    def begin_run(self, **meta) -> int:
        """Register one simulator run; returns its run id.

        ``meta`` must include ``n_hosts``, ``n_pairs`` and ``n_bins``;
        the first run fixes the recorder's shape and later runs must
        match it.
        """
        for key in ("n_hosts", "n_pairs", "n_bins"):
            if key not in meta:
                raise ConfigurationError(f"flowstats run metadata needs {key}")
        self._adopt_shape(meta["n_hosts"], meta["n_pairs"], meta["n_bins"])
        self.runs.append(dict(meta))
        empty = np.zeros(0, dtype=np.int64)
        self._delivered.append(np.zeros(self.n_pairs, dtype=np.int64))
        self._lat_sum.append(np.zeros(self.n_pairs, dtype=np.int64))
        self._lat_max.append(np.full(self.n_pairs, -1, dtype=np.int64))
        self._hist_pair.append(empty)
        self._hist_bin.append(empty)
        self._hist_count.append(empty)
        return len(self.runs) - 1

    def set_pair_endpoints(self, src, dst) -> None:
        """Record (or re-validate) the per-pair endpoint tables."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ConfigurationError(
                "pair endpoint tables must be equal-length 1-D"
            )
        if self._pair_src is None:
            self._pair_src = src.copy()
            self._pair_dst = dst.copy()
        elif not (
            np.array_equal(self._pair_src, src)
            and np.array_equal(self._pair_dst, dst)
        ):
            raise ConfigurationError(
                "flowstats recorder already holds different pair endpoints "
                "(one recorder tracks one host count)"
            )

    def record_run(self, run: int, pairs, latencies) -> None:
        """Fold one run's raw measured ``(pair, latency)`` streams in.

        ``pairs[i]`` is the dense pair id of the ``i``-th measured
        delivery and ``latencies[i]`` its latency in cycles.  The tally
        (delivered counts, latency sums/maxima, exact histogram) happens
        here in one shared vectorized pass, so every engine tier that
        hands over identical streams produces identical columns.
        Callable more than once per run; contributions accumulate.
        """
        if not 0 <= run < len(self.runs):
            raise ConfigurationError(f"record_run for unknown run {run}")
        p = np.asarray(pairs, dtype=np.int64)
        lat = np.asarray(latencies, dtype=np.int64)
        if p.shape != lat.shape or p.ndim != 1:
            raise ConfigurationError(
                "pairs and latencies must be equal-length 1-D streams"
            )
        if not p.size:
            return
        if p.min() < 0 or p.max() >= self.n_pairs:
            raise ConfigurationError(
                f"pair ids must lie in [0, {self.n_pairs}), got "
                f"[{int(p.min())}, {int(p.max())}]"
            )
        if lat.min() < 0 or lat.max() >= self.n_bins:
            raise ConfigurationError(
                f"latencies must lie in [0, {self.n_bins}) cycles, got "
                f"[{int(lat.min())}, {int(lat.max())}]"
            )
        self._delivered[run] += np.bincount(p, minlength=self.n_pairs)
        np.add.at(self._lat_sum[run], p, lat)
        np.maximum.at(self._lat_max[run], p, lat)
        # Exact histogram: merge the new (pair, bin) keys with the run's
        # existing sparse rows, keeping the canonical (pair, bin) order.
        key = p * self.n_bins + lat
        cnt = np.ones(key.size, dtype=np.int64)
        if self._hist_pair[run].size:
            key = np.concatenate(
                [self._hist_pair[run] * self.n_bins + self._hist_bin[run], key]
            )
            cnt = np.concatenate([self._hist_count[run], cnt])
        uniq, inverse = np.unique(key, return_inverse=True)
        counts = np.bincount(inverse, weights=cnt).astype(np.int64)
        self._hist_pair[run] = uniq // self.n_bins
        self._hist_bin[run] = uniq % self.n_bins
        self._hist_count[run] = counts

    # --------------------------------------------------- snapshot / merge
    def snapshot(self) -> dict:
        """Everything recorded so far as a plain dict of numpy arrays.

        Per-run storage is deliberately rebuilt into contiguous arrays:
        a serial recorder and merged fresh per-worker recorders snapshot
        identically.
        """
        n = len(self.runs)
        snap = {
            "format": FLOWSTATS_FORMAT,
            "n_hosts": self.n_hosts,
            "n_pairs": self.n_pairs,
            "n_bins": self.n_bins,
            "n_runs": n,
            "runs": [dict(r) for r in self.runs],
        }
        empty = np.zeros(0, dtype=np.int64)
        snap["pair_src"] = (
            self._pair_src.copy() if self._pair_src is not None else empty
        )
        snap["pair_dst"] = (
            self._pair_dst.copy() if self._pair_dst is not None else empty
        )
        for name, cols in (
            ("delivered", self._delivered),
            ("lat_sum", self._lat_sum),
            ("lat_max", self._lat_max),
        ):
            snap[f"fs_{name}"] = (
                np.stack(cols)
                if n
                else np.zeros((0, self.n_pairs), dtype=np.int64)
            )
        snap["fs_run"] = (
            np.concatenate(
                [
                    np.full(h.size, r, dtype=np.int64)
                    for r, h in enumerate(self._hist_pair)
                ]
            )
            if n
            else empty
        )
        for name, cols in (
            ("pair", self._hist_pair),
            ("bin", self._hist_bin),
            ("count", self._hist_count),
        ):
            snap[f"fs_{name}"] = np.concatenate(cols) if n else empty
        return snap

    def merge(self, snap: Mapping) -> None:
        """Fold a worker snapshot into this recorder.

        Run ids are offset past this recorder's runs, so merging
        per-cell snapshots in task order reproduces exactly the flow
        record a serial run under one recorder would have produced.
        """
        if snap.get("format") != FLOWSTATS_FORMAT:
            raise ConfigurationError(
                f"cannot merge flowstats snapshot of format "
                f"{snap.get('format')!r}"
            )
        n = int(snap["n_runs"])
        if int(snap.get("n_pairs", 0)):
            self._adopt_shape(
                snap["n_hosts"], snap["n_pairs"], snap["n_bins"]
            )
        src = np.asarray(snap.get("pair_src", ()), dtype=np.int64)
        if src.size:
            self.set_pair_endpoints(src, snap["pair_dst"])
        self.runs.extend(dict(r) for r in snap["runs"])
        if not n:
            return
        for name, cols in (
            ("delivered", self._delivered),
            ("lat_sum", self._lat_sum),
            ("lat_max", self._lat_max),
        ):
            mat = np.asarray(snap[f"fs_{name}"], dtype=np.int64)
            for r in range(n):
                cols.append(mat[r].copy())
        hist_run = np.asarray(snap["fs_run"], dtype=np.int64)
        for name, cols in (
            ("pair", self._hist_pair),
            ("bin", self._hist_bin),
            ("count", self._hist_count),
        ):
            vals = np.asarray(snap[f"fs_{name}"], dtype=np.int64)
            for r in range(n):
                cols.append(vals[hist_run == r].copy())


# ------------------------------------------------------- persistence
def save_flowstats(path, snap: Optional[Mapping] = None):
    """Write a snapshot as a compressed ``.npz``; returns the path.

    With ``snap=None`` the active recorder's snapshot is written (a
    no-op returning ``None`` when the recorder is disabled).
    """
    from pathlib import Path

    if snap is None:
        snap = snapshot()
        if snap is None:
            return None
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = dict(snap)
    doc["runs"] = json.dumps(doc.get("runs", []))
    np.savez_compressed(path, **doc)
    return path


def load_flowstats(path) -> dict:
    """Load a :func:`save_flowstats` file back into snapshot form."""
    with np.load(path, allow_pickle=False) as data:
        snap = {}
        for key in data.files:
            arr = data[key]
            snap[key] = arr.item() if arr.ndim == 0 else arr
    snap["runs"] = json.loads(str(snap.get("runs", "[]")))
    for key in ("n_hosts", "n_pairs", "n_bins", "n_runs"):
        if key in snap:
            snap[key] = int(snap[key])
    snap["format"] = str(snap.get("format", ""))
    if snap["format"] != FLOWSTATS_FORMAT:
        raise ConfigurationError(
            f"{path} is not a {FLOWSTATS_FORMAT} file "
            f"(format={snap['format']!r})"
        )
    return snap


# --------------------------------------------------------- module state
#: The process's active recorder, or ``None`` when flow stats are off.
#: The simulator reads this once at construction, exactly like
#: ``metrics._active`` / ``linkstate._active``.
_active: Optional[FlowstatsRecorder] = None


def enable() -> FlowstatsRecorder:
    """Install (and return) the process's active recorder."""
    global _active
    _active = FlowstatsRecorder()
    return _active


def disable() -> None:
    """Turn the recorder off; simulators constructed after this pay nothing."""
    global _active
    _active = None


def enabled() -> bool:
    return _active is not None


def active() -> Optional[FlowstatsRecorder]:
    return _active


def config() -> Optional[dict]:
    """The active recorder's construction parameters (for pool workers).

    The recorder has none, so this is ``{}`` when enabled and ``None``
    when disabled — callers must test ``is not None``, not truthiness.
    """
    return None if _active is None else {}


@contextmanager
def capture(**kwargs) -> Iterator[FlowstatsRecorder]:
    """Divert recording to a fresh recorder for the duration of the block.

    Pool workers scope one task's flow stats with this (parameterised by
    the parent's :func:`config`); the previous state is restored on exit.
    """
    global _active
    prev = _active
    fresh = FlowstatsRecorder(**kwargs)
    _active = fresh
    try:
        yield fresh
    finally:
        _active = prev


def snapshot() -> Optional[dict]:
    """Snapshot of the active recorder, or ``None`` when disabled."""
    rec = _active
    return None if rec is None else rec.snapshot()


def merge_snapshot(snap: Optional[Mapping]) -> None:
    """Merge a worker snapshot into the active recorder (no-op if either
    side is absent)."""
    rec = _active
    if rec is not None and snap is not None:
        rec.merge(snap)
