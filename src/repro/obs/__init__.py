"""Observability for the repro pipeline: metrics, logs, traces, manifests.

- :mod:`repro.obs.metrics` — counters / gauges / histograms / span timers /
  per-link arrays with a no-op fast path when disabled and snapshot+merge
  semantics for cross-process aggregation;
- :mod:`repro.obs.trace` — packet-level flight recorder (columnar ring
  buffers, head-based sampling) plus latency decomposition, stall
  attribution and a route-membership audit;
- :mod:`repro.obs.compare` — cross-run regression diffing of manifests
  (``python -m repro.experiments compare-runs A B``);
- :mod:`repro.obs.ledger` — the persistent cross-run index: append-only,
  content-hash-deduplicated JSONL entries distilled from manifests and
  benchmark exports, with atomic concurrent-safe appends;
- :mod:`repro.obs.trend` — N-run trend analysis over the ledger (window
  median baselines, changepoints, per-host noise floors) and the
  ``python -m repro.experiments runs`` CLI family;
- :mod:`repro.obs.timeseries` — windowed simulator time series (per-window
  injection/ejection/latency/stall/occupancy/top-link rows) plus
  steady-state convergence detection and warmup-sufficiency reports;
- :mod:`repro.obs.linkstate` — dense per-window link-state matrices
  (flits forwarded / credit stalls / peak VC occupancy per directed
  link) across all three engine tiers;
- :mod:`repro.obs.forensics` — congestion forensics over that record:
  stall rankings, upstream backpressure trees, path attribution,
  onset detection, and the ``inspect`` CLI;
- :mod:`repro.obs.flowstats` — per-(src,dst)-pair flow telemetry
  (delivered / latency sum / latency max columns plus an exact mergeable
  latency histogram) across all three engine tiers;
- :mod:`repro.obs.fairness` — flow-level SLO analysis over that record:
  Jain's fairness index, per-pair percentile digests, victim-pair
  detection with link-state attribution, and the ``flows`` CLI;
- :mod:`repro.obs.monitor` — live run monitor: worker heartbeats over a
  multiprocessing queue, in-place ANSI dashboard, stale-worker watchdog;
- :mod:`repro.obs.log` — structured events (stderr + JSONL + handlers);
- :mod:`repro.obs.progress` — completed/total + ETA reporting;
- :mod:`repro.obs.manifest` — per-run JSON manifests.

Typical embedding use::

    from repro.obs import metrics, trace
    reg = metrics.enable()            # opt in (off by default)
    rec = trace.enable(sample=64)     # record every 64th packet
    ... run experiments ...
    snap = reg.snapshot()             # JSON-able totals
    trace.save_trace("run.trace.npz")
"""

from repro.obs import (
    compare,
    fairness,
    flowstats,
    forensics,
    ledger,
    linkstate,
    log,
    metrics,
    monitor,
    timeseries,
    trace,
    trend,
)
from repro.obs.flowstats import FlowstatsRecorder
from repro.obs.linkstate import LinkstateRecorder
from repro.obs.manifest import build_manifest, topology_hash, write_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import Heartbeater, RunMonitor
from repro.obs.progress import Progress
from repro.obs.timeseries import TimeseriesRecorder
from repro.obs.trace import TraceAnalysis, TraceRecorder

__all__ = [
    "compare",
    "fairness",
    "flowstats",
    "forensics",
    "ledger",
    "linkstate",
    "log",
    "metrics",
    "monitor",
    "timeseries",
    "trace",
    "trend",
    "FlowstatsRecorder",
    "LinkstateRecorder",
    "Heartbeater",
    "MetricsRegistry",
    "Progress",
    "RunMonitor",
    "TimeseriesRecorder",
    "TraceAnalysis",
    "TraceRecorder",
    "build_manifest",
    "topology_hash",
    "write_manifest",
]
