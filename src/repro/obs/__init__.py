"""Observability for the repro pipeline: metrics, logs, progress, manifests.

- :mod:`repro.obs.metrics` — counters / gauges / histograms / span timers /
  per-link arrays with a no-op fast path when disabled and snapshot+merge
  semantics for cross-process aggregation;
- :mod:`repro.obs.log` — structured events (stderr + JSONL + handlers);
- :mod:`repro.obs.progress` — completed/total + ETA reporting;
- :mod:`repro.obs.manifest` — per-run JSON manifests.

Typical embedding use::

    from repro.obs import metrics
    reg = metrics.enable()            # opt in (off by default)
    ... run experiments ...
    snap = reg.snapshot()             # JSON-able totals
"""

from repro.obs import log, metrics
from repro.obs.manifest import build_manifest, topology_hash, write_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import Progress

__all__ = [
    "log",
    "metrics",
    "MetricsRegistry",
    "Progress",
    "build_manifest",
    "topology_hash",
    "write_manifest",
]
