"""Congestion forensics: causal analyses over dense link-state telemetry.

:mod:`repro.obs.linkstate` records *what* every directed link did per
window; this module answers *why a run got slow*, joining that record
with the packet flight recorder and the path cache's route tables:

- :func:`rank_stalled_links` — which links absorbed the credit stalls
  (the congestion heat ranking);
- :func:`congestion_tree` — causal backpressure attribution: starting
  from a saturated link, walk the stall wave upstream (a stall charged
  to link ``u -> v`` fills buffers at ``u``, which stalls the links
  feeding ``u``) into a tree rooted at the congestion source;
- :func:`link_path_attribution` — which mechanisms' path indices and
  switch pairs loaded each link (dynamic, from traced routes);
- :func:`static_link_paths` — which precomputed path indices *could*
  load each link (static, from a :class:`~repro.core.cache.PathCache`);
- :func:`congestion_onset` — when stalls became sustained, reusing the
  steady-state moving-window test of
  :func:`repro.obs.timeseries.detect_convergence`.

The CLI (``python -m repro.experiments inspect <telemetry-dir>``) walks
a telemetry directory, pairs every ``*.linkstate.npz`` with its sibling
trace / time-series artifacts, prints the ASCII deep dive
(:mod:`repro.report.ascii` heatmaps and attribution tables) and, with
``--html``, writes the self-contained per-run HTML report
(:func:`repro.report.export.forensics_html`).  All outputs are pure
functions of the artifacts — byte-deterministic across processes.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.linkstate import LINKSTATE_FORMAT, MATRIX_COLS, load_linkstate
from repro.obs.timeseries import detect_convergence

__all__ = [
    "link_label",
    "run_label",
    "run_windows",
    "rank_stalled_links",
    "congestion_tree",
    "congestion_onset",
    "link_path_attribution",
    "static_link_paths",
    "forensics_report",
    "deep_dive_docs",
    "main",
]


# ------------------------------------------------------------- labelling
def link_label(src: int, dst: int) -> str:
    """Human label of a directed link; hosts are ``-1 - host`` encoded."""

    def ep(v: int) -> str:
        return f"s{v}" if v >= 0 else f"h{-1 - v}"

    return f"{ep(int(src))}->{ep(int(dst))}"


def run_label(snap: Mapping, run: int) -> str:
    """``scheme/mechanism @ rate`` label of run ``run`` of a snapshot."""
    runs = snap.get("runs", [])
    if not 0 <= run < len(runs):
        return f"run{run}"
    meta = runs[run]
    label = f"{meta.get('scheme', '?')}/{meta.get('mechanism', '?')}"
    rate = meta.get("rate")
    return f"{label} @ {rate:g}" if isinstance(rate, (int, float)) else label


def _check(snap: Mapping) -> None:
    if snap.get("format") != LINKSTATE_FORMAT:
        raise ConfigurationError(
            f"not a {LINKSTATE_FORMAT} snapshot (format={snap.get('format')!r})"
        )


# -------------------------------------------------------------- raw views
def run_windows(snap: Mapping, run: int) -> Dict[str, np.ndarray]:
    """One run's window rows in index order.

    Returns ``start`` / ``cycles`` vectors plus the three dense matrices
    (``forwarded``, ``credit_stalls``, ``peak_occupancy``), each shaped
    ``(run windows, n_links)``.
    """
    _check(snap)
    mask = np.asarray(snap["ls_run"], dtype=np.int64) == run
    order = np.argsort(np.asarray(snap["ls_index"], dtype=np.int64)[mask])
    out = {
        "start": np.asarray(snap["ls_start"], dtype=np.int64)[mask][order],
        "cycles": np.asarray(snap["ls_cycles"], dtype=np.int64)[mask][order],
    }
    for c in MATRIX_COLS:
        out[c] = np.asarray(snap[f"ls_{c}"], dtype=np.int64)[mask][order]
    return out


def _totals(snap: Mapping, run: Optional[int]) -> Dict[str, np.ndarray]:
    """Per-link totals (max for peak) over one run or the whole snapshot."""
    _check(snap)
    if run is None:
        mats = {c: np.asarray(snap[f"ls_{c}"], dtype=np.int64) for c in MATRIX_COLS}
    else:
        mats = run_windows(snap, run)
    n_links = int(snap["n_links"])
    out = {}
    for c in MATRIX_COLS:
        m = mats[c]
        if not m.size:
            out[c] = np.zeros(n_links, dtype=np.int64)
        elif c == "peak_occupancy":
            out[c] = m.max(axis=0)
        else:
            out[c] = m.sum(axis=0)
    return out


# ------------------------------------------------------- stall attribution
def rank_stalled_links(
    snap: Mapping, run: Optional[int] = None, *, top: int = 10
) -> List[dict]:
    """The ``top`` links ranked by credit-stall contribution, descending.

    Each entry carries the link id, its endpoints and label, the stall
    total, its share of all stalls, and the link's forwarded-flit total
    and peak VC occupancy over the same windows.  Ties break on link id,
    so the ranking is deterministic.
    """
    totals = _totals(snap, run)
    stalls = totals["credit_stalls"]
    grand = int(stalls.sum())
    order = np.lexsort((np.arange(len(stalls)), -stalls))[: max(0, top)]
    src = np.asarray(snap["link_src"], dtype=np.int64)
    dst = np.asarray(snap["link_dst"], dtype=np.int64)
    out = []
    for lid in order.tolist():
        n = int(stalls[lid])
        if n == 0:
            break
        out.append(
            {
                "link": lid,
                "src": int(src[lid]),
                "dst": int(dst[lid]),
                "label": link_label(src[lid], dst[lid]),
                "credit_stalls": n,
                "share": n / grand if grand else 0.0,
                "forwarded": int(totals["forwarded"][lid]),
                "peak_occupancy": int(totals["peak_occupancy"][lid]),
            }
        )
    return out


def congestion_tree(
    snap: Mapping,
    run: Optional[int] = None,
    *,
    root: Optional[int] = None,
    min_stalls: int = 1,
    max_depth: int = 4,
    max_children: int = 4,
) -> Optional[dict]:
    """Backpressure tree rooted at a saturated link, walking upstream.

    A credit stall charged to link ``u -> v`` means a head-of-line packet
    at ``u`` found the downstream buffers on ``v`` full; those waiting
    packets in turn fill ``u``'s buffers and stall the links feeding
    ``u``.  Each node's children are the stalled links whose destination
    is the node's source switch — the wave front one hop further
    upstream.  The default ``root`` is the most-stalled link that
    *originates at a switch*: at saturation the raw stall maximum is
    usually an injection link — the symptom at the network edge, with
    nothing upstream of its source queue — while the congested core
    sits on a switch link; when no switch-sourced link stalled, the
    edge maximum is the whole story and becomes the root.  Children are
    ordered by stall count (ties on link id) and capped at
    ``max_children``; every link appears at most once, so the walk
    terminates on cyclic topologies.  Returns ``None`` when nothing
    stalled.
    """
    totals = _totals(snap, run)
    stalls = totals["credit_stalls"]
    src = np.asarray(snap["link_src"], dtype=np.int64)
    dst = np.asarray(snap["link_dst"], dtype=np.int64)
    if root is None:
        from_switch = np.where(src >= 0, stalls, 0)
        root = (
            int(from_switch.argmax())
            if int(from_switch.max(initial=0)) > 0
            else int(stalls.argmax())
        )
    if stalls[root] < max(1, min_stalls):
        return None
    grand = int(stalls.sum())
    by_dst: Dict[int, List[int]] = {}
    for lid in range(len(src)):
        by_dst.setdefault(int(dst[lid]), []).append(lid)
    visited = {int(root)}

    def build(lid: int, depth: int) -> dict:
        node = {
            "link": int(lid),
            "src": int(src[lid]),
            "dst": int(dst[lid]),
            "label": link_label(src[lid], dst[lid]),
            "credit_stalls": int(stalls[lid]),
            "share": int(stalls[lid]) / grand if grand else 0.0,
            "forwarded": int(totals["forwarded"][lid]),
            "peak_occupancy": int(totals["peak_occupancy"][lid]),
            "children": [],
        }
        # Injection links start at a host: there is nothing upstream of a
        # source queue, so the walk bottoms out there.
        if depth < max_depth and node["src"] >= 0:
            kids = [
                m
                for m in by_dst.get(node["src"], ())
                if m not in visited and stalls[m] >= min_stalls
            ]
            kids.sort(key=lambda m: (-int(stalls[m]), m))
            kids = kids[:max_children]
            visited.update(kids)
            node["children"] = [build(m, depth + 1) for m in kids]
        return node

    return build(int(root), 0)


def congestion_onset(
    snap: Mapping,
    run: int,
    *,
    check_windows: int = 4,
    rel_tol: float = 0.05,
) -> Optional[dict]:
    """When run ``run``'s credit stalls became sustained, or ``None``.

    Reuses the steady-state moving-window test: the per-window total
    stall series is fed to
    :func:`repro.obs.timeseries.detect_convergence`; the converged tail
    gives the stall plateau, and the onset is the first window whose
    stall count reaches half that plateau.  Returns ``None`` for runs
    that never stalled (no congestion to date).
    """
    w = run_windows(snap, run)
    series = w["credit_stalls"].sum(axis=1).astype(np.float64)
    if not series.size or float(series.sum()) <= 0.0:
        return None
    converged_at = detect_convergence(
        [series.tolist()], check_windows, rel_tol
    )
    m = int(check_windows)
    tail = (
        series[converged_at - m : converged_at]
        if converged_at is not None
        else series[-min(m, len(series)):]
    )
    plateau = float(tail.mean())
    if plateau <= 0.0:
        # Stalls died back down to nothing: a transient, not congestion.
        return None
    threshold = 0.5 * plateau
    onset = int(np.argmax(series >= threshold))
    return {
        "run": int(run),
        "onset_window": onset,
        "onset_cycle": int(w["start"][onset]),
        "plateau": plateau,
        "threshold": threshold,
        "converged_at": converged_at,
        "n_windows": int(len(series)),
    }


# --------------------------------------------------- path/pair attribution
def _pair_links(snap: Mapping) -> Dict[Tuple[int, int], int]:
    """Endpoint pair ``(src, dst)`` -> link id, from the snapshot tables."""
    src = np.asarray(snap["link_src"], dtype=np.int64)
    dst = np.asarray(snap["link_dst"], dtype=np.int64)
    return {
        (int(u), int(v)): lid
        for lid, (u, v) in enumerate(zip(src.tolist(), dst.tolist()))
    }


def link_path_attribution(snap: Mapping, trace: Mapping) -> Dict[int, dict]:
    """Which traced traffic loaded each link: dynamic route attribution.

    Joins the link-state snapshot's endpoint tables with a flight
    recorder snapshot: every launched traced packet contributes its
    injection link, the switch links along its recorded route, and its
    ejection link.  Returns ``{link id: {"packets", "paths", "pairs"}}``
    where ``paths`` counts ``(scheme/mechanism label, path index)``
    choices and ``pairs`` counts ``(source switch, destination switch)``
    demands.  Only links that carried traced traffic appear.
    """
    _check(snap)
    if trace.get("format") != "repro-trace-v1":
        raise ConfigurationError(
            f"not a repro-trace-v1 snapshot (format={trace.get('format')!r})"
        )
    pair_of = _pair_links(snap)
    runs = list(trace.get("runs", []))
    pk = {
        c: np.asarray(trace[f"pk_{c}"], dtype=np.int64)
        for c in ("run", "src", "dst", "src_sw", "dst_sw", "path_index", "t_launch")
    }
    route = np.asarray(trace["pk_route"], dtype=np.int64)
    out: Dict[int, dict] = {}

    def bump(lid: int, key: Tuple[str, int], pair: Tuple[int, int]) -> None:
        doc = out.setdefault(lid, {"packets": 0, "paths": {}, "pairs": {}})
        doc["packets"] += 1
        doc["paths"][key] = doc["paths"].get(key, 0) + 1
        doc["pairs"][pair] = doc["pairs"].get(pair, 0) + 1

    for i in np.flatnonzero(pk["t_launch"] >= 0):
        run = int(pk["run"][i])
        meta = runs[run] if 0 <= run < len(runs) else {}
        label = f"{meta.get('scheme', '?')}/{meta.get('mechanism', '?')}"
        key = (label, int(pk["path_index"][i]))
        pair = (int(pk["src_sw"][i]), int(pk["dst_sw"][i]))
        row = route[i]
        hops = [int(x) for x in row[row >= 0]]
        links = [(-1 - int(pk["src"][i]), pair[0])]
        links += list(zip(hops, hops[1:]))
        links.append((pair[1], -1 - int(pk["dst"][i])))
        for uv in links:
            lid = pair_of.get(uv)
            if lid is not None:
                bump(lid, key, pair)
    return out


def static_link_paths(
    snap: Mapping, cache
) -> Dict[int, List[Tuple[int, int, int]]]:
    """Which precomputed path indices cross each switch link (static).

    Walks every cached pair of a :class:`~repro.core.cache.PathCache`
    (its CSR route-table source) and marks, per link id, the
    ``(source switch, destination switch, path index)`` triples whose
    path contains the link.  The dynamic complement of
    :func:`link_path_attribution`: this is what *could* load a link,
    that is what *did*.
    """
    _check(snap)
    pair_of = _pair_links(snap)
    out: Dict[int, List[Tuple[int, int, int]]] = {}
    for (s, d), ps in sorted(cache.export_state().items()):
        for idx in range(ps.k):
            nodes = ps[idx].nodes
            for u, v in zip(nodes, nodes[1:]):
                lid = pair_of.get((int(u), int(v)))
                if lid is not None:
                    out.setdefault(lid, []).append((int(s), int(d), idx))
    return out


# ----------------------------------------------------------- ASCII report
def forensics_report(
    snap: Mapping,
    *,
    trace: Optional[Mapping] = None,
    timeseries: Optional[Mapping] = None,
    run: Optional[int] = None,
    top: int = 8,
    depth: int = 3,
    title: str = "congestion forensics",
) -> str:
    """The full ASCII deep dive of one link-state snapshot.

    Per run: the window summary line, the credit-stall ranking table,
    the backpressure tree, the link-by-window forwarded-flits heatmap,
    and (with a trace snapshot) the hot-link path attribution.  Pure
    function of the snapshots — byte-deterministic.
    """
    from repro.report.ascii import (
        congestion_tree_text,
        linkstate_heatmap,
        stall_attribution_table,
    )

    _check(snap)
    n_runs = int(snap["n_runs"])
    lines = [
        f"{title}: {n_runs} run(s), {int(snap['n_windows'])} window(s) of "
        f"{int(snap['window'])} cycles, {int(snap['n_links'])} links"
    ]
    attribution = (
        link_path_attribution(snap, trace) if trace is not None else None
    )
    run_ids = range(n_runs) if run is None else [run]
    for r in run_ids:
        if not 0 <= r < n_runs:
            raise ConfigurationError(
                f"run {r} out of range (snapshot has {n_runs} runs)"
            )
        w = run_windows(snap, r)
        fwd, stl = w["forwarded"], w["credit_stalls"]
        lines.append("")
        lines.append(
            f"== run {r}: {run_label(snap, r)} — {len(w['start'])} windows, "
            f"{int(fwd.sum())} flits forwarded, "
            f"{int(stl.sum())} credit stalls, "
            f"peak occupancy {int(w['peak_occupancy'].max()) if fwd.size else 0}"
        )
        onset = congestion_onset(snap, r)
        if onset is not None:
            conv = (
                f"converged at window {onset['converged_at']}"
                if onset["converged_at"] is not None
                else "never converged"
            )
            lines.append(
                f"   congestion onset: window {onset['onset_window']} "
                f"(cycle {onset['onset_cycle']}) — stall plateau "
                f"{onset['plateau']:.1f}/window, {conv}"
            )
        else:
            lines.append("   congestion onset: none (no sustained stalls)")
        ranked = rank_stalled_links(snap, r, top=top)
        lines.append("")
        if ranked:
            lines.append(stall_attribution_table(ranked))
            tree = congestion_tree(snap, r, max_depth=depth)
            if tree is not None:
                lines.append("")
                lines.append(congestion_tree_text(tree))
        else:
            lines.append("   no credit stalls recorded")
        # Heatmap over the run's hottest links by forwarded flits.
        if fwd.size:
            per_link = fwd.sum(axis=0)
            hot = np.lexsort((np.arange(len(per_link)), -per_link))[:top]
            hot = [int(h) for h in hot if per_link[h] > 0]
            if hot:
                src = np.asarray(snap["link_src"], dtype=np.int64)
                dst = np.asarray(snap["link_dst"], dtype=np.int64)
                lines.append("")
                lines.append(
                    linkstate_heatmap(
                        [fwd[:, h].tolist() for h in hot],
                        [link_label(src[h], dst[h]) for h in hot],
                        title=f"   flits forwarded per {int(snap['window'])}"
                        "-cycle window (hottest links)",
                    )
                )
        if attribution is not None and ranked:
            lines.append("")
            lines.append("   hot-link path attribution (traced packets):")
            for entry in ranked[: min(3, len(ranked))]:
                doc = attribution.get(entry["link"])
                if doc is None:
                    lines.append(
                        f"     {entry['label']}: no traced packets crossed it"
                    )
                    continue
                paths = sorted(
                    doc["paths"].items(), key=lambda kv: (-kv[1], kv[0])
                )[:4]
                parts = ", ".join(
                    f"{lab} path#{idx}: {n}" for (lab, idx), n in paths
                )
                lines.append(
                    f"     {entry['label']}: {doc['packets']} traced "
                    f"crossings — {parts}"
                )
    return "\n".join(lines)


# ------------------------------------------------------------- HTML input
def _run_latency(
    snap: Mapping, timeseries: Optional[Mapping], run: int
) -> Optional[List[float]]:
    """Per-window mean latency of the matching time-series run, if any."""
    if timeseries is None:
        return None
    ts_runs = timeseries.get("runs", [])
    ls_runs = snap.get("runs", [])
    if len(ts_runs) != len(ls_runs) or not 0 <= run < len(ts_runs):
        return None
    for key in ("scheme", "mechanism", "rate"):
        if ts_runs[run].get(key) != ls_runs[run].get(key):
            return None
    from repro.obs.timeseries import run_series

    return [float(v) for v in run_series(timeseries, run)["latency"]]


def deep_dive_docs(
    snap: Mapping,
    *,
    name: str = "linkstate",
    trace: Optional[Mapping] = None,
    timeseries: Optional[Mapping] = None,
    top: int = 8,
    depth: int = 3,
) -> dict:
    """Prepare one snapshot's plain-data document for the HTML renderer.

    Everything :func:`repro.report.export.forensics_html` needs, as
    JSON-able plain structures — the renderer stays a pure template.
    """
    _check(snap)
    src = np.asarray(snap["link_src"], dtype=np.int64)
    dst = np.asarray(snap["link_dst"], dtype=np.int64)
    attribution = (
        link_path_attribution(snap, trace) if trace is not None else None
    )
    runs = []
    for r in range(int(snap["n_runs"])):
        w = run_windows(snap, r)
        fwd, stl = w["forwarded"], w["credit_stalls"]
        per_link = fwd.sum(axis=0) if fwd.size else np.zeros(0, dtype=np.int64)
        hot = np.lexsort((np.arange(len(per_link)), -per_link))[:top]
        hot = [int(h) for h in hot if per_link[h] > 0]
        ranked = rank_stalled_links(snap, r, top=top)
        hot_paths = []
        if attribution is not None:
            for entry in ranked[: min(3, len(ranked))]:
                doc = attribution.get(entry["link"])
                if doc is None:
                    continue
                paths = sorted(
                    doc["paths"].items(), key=lambda kv: (-kv[1], kv[0])
                )[:4]
                hot_paths.append(
                    {
                        "label": entry["label"],
                        "packets": doc["packets"],
                        "paths": [
                            {"series": lab, "path_index": idx, "count": n}
                            for (lab, idx), n in paths
                        ],
                    }
                )
        runs.append(
            {
                "run": r,
                "label": run_label(snap, r),
                "meta": dict(snap["runs"][r]),
                "n_windows": int(len(w["start"])),
                "starts": w["start"].tolist(),
                "forwarded_total": int(fwd.sum()) if fwd.size else 0,
                "stall_total": int(stl.sum()) if stl.size else 0,
                "peak_max": int(w["peak_occupancy"].max()) if fwd.size else 0,
                "heat_labels": [link_label(src[h], dst[h]) for h in hot],
                "heat_rows": [fwd[:, h].tolist() for h in hot],
                "stall_rows": [stl[:, h].tolist() for h in hot],
                "ranked": ranked,
                "tree": congestion_tree(snap, r, max_depth=depth),
                "onset": congestion_onset(snap, r),
                "latency": _run_latency(snap, timeseries, r),
                "hot_paths": hot_paths,
            }
        )
    return {
        "name": name,
        "window": int(snap["window"]),
        "n_links": int(snap["n_links"]),
        "n_windows": int(snap["n_windows"]),
        "runs": runs,
    }


# ------------------------------------------------------------------- CLI
def main(argv=None) -> int:
    """``inspect`` entry point (``python -m repro.experiments inspect``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments inspect",
        description="Congestion forensics over recorded link-state "
        "telemetry: stall attribution, backpressure trees, heatmaps and "
        "an optional self-contained HTML deep dive.",
    )
    parser.add_argument(
        "path",
        help="telemetry directory (every *.linkstate.npz in it) or one "
        ".linkstate.npz file",
    )
    parser.add_argument(
        "--run", type=int, default=None, metavar="N",
        help="inspect only run N of each snapshot (default: all runs)",
    )
    parser.add_argument(
        "--top", type=int, default=8, metavar="K",
        help="links per ranking/heatmap (default: 8)",
    )
    parser.add_argument(
        "--depth", type=int, default=3, metavar="D",
        help="backpressure-tree depth (default: 3)",
    )
    parser.add_argument(
        "--html", default=None, metavar="OUT",
        help="also write the self-contained HTML deep dive to OUT",
    )
    args = parser.parse_args(argv)
    if args.top < 1:
        parser.error("--top must be >= 1")
    if args.depth < 0:
        parser.error("--depth must be >= 0")

    root = Path(args.path)
    if root.is_file():
        files = [root]
    elif root.is_dir():
        files = sorted(root.glob("*.linkstate.npz"))
    else:
        print(f"inspect: {root} does not exist")
        return 2
    if not files:
        print(f"inspect: no *.linkstate.npz artifacts under {root}")
        return 2

    docs = []
    for path in files:
        snap = load_linkstate(path)
        stem = path.name[: -len(".linkstate.npz")]
        trace = _sibling(path, stem, ".trace.npz")
        ts = _sibling(path, stem, ".timeseries.npz")
        print(
            forensics_report(
                snap,
                trace=trace,
                timeseries=ts,
                run=args.run,
                top=args.top,
                depth=args.depth,
                title=f"congestion forensics [{stem}]",
            )
        )
        print()
        docs.append(
            deep_dive_docs(
                snap, name=stem, trace=trace, timeseries=ts,
                top=args.top, depth=args.depth,
            )
        )
    if args.html is not None:
        from repro.report.export import forensics_html

        out = Path(args.html)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(forensics_html(docs))
        print(f"# deep dive: {out}")
    return 0


def _sibling(path: Path, stem: str, suffix: str) -> Optional[dict]:
    """Load the sibling trace/time-series artifact, or None if absent."""
    sib = path.with_name(stem + suffix)
    if not sib.exists():
        return None
    try:
        if suffix == ".trace.npz":
            from repro.obs.trace import load_trace

            return load_trace(sib)
        from repro.obs.timeseries import load_timeseries

        return load_timeseries(sib)
    except (ConfigurationError, OSError, ValueError):
        return None
