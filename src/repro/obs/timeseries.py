"""Windowed time-series telemetry for the flit-level simulator.

The metrics registry (:mod:`repro.obs.metrics`) and the flight recorder
(:mod:`repro.obs.trace`) both answer *end-of-run* questions — totals and
per-packet events.  This module records how a run *evolved*: the
simulator slices its cycle loop into fixed-width windows and reports one
row per window — flits injected and ejected, the mean latency of the
window's ejections, credit stalls, flits forwarded, total VC-buffer
occupancy, and the ``top_links`` hottest links of the window — into
preallocated columnar numpy buffers.

Three design rules carried over from ``metrics``/``trace``:

- **Module state, NOOP off.**  One active recorder per process
  (:func:`enable` / :func:`capture`); with the recorder off the
  simulator pays one ``is None`` test at construction plus one cheap
  boolean test per phase call — nothing per cycle.
- **Task-order merge.**  Worker snapshots merge with run-id offsets
  (:meth:`TimeseriesRecorder.merge`), so a parallel
  ``run_saturation_grid`` produces the byte-identical time series of a
  serial run under one recorder.
- **``.npz`` persistence** next to the run manifest
  (:func:`save_timeseries` / :func:`load_timeseries`).

On top of the raw series sit the steady-state tools:
:func:`spans_converged` is the moving-window convergence test the
simulator's opt-in ``SimConfig.steady_state`` mode uses to auto-extend
warmup, and :func:`steady_state_report` replays the same test over a
recorded snapshot to report, per run, whether the configured warmup was
actually sufficient (the number the manifest carries).
"""

from __future__ import annotations

import json
import math
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "TIMESERIES_FORMAT",
    "WINDOW_COLS",
    "TimeseriesRecorder",
    "spans_converged",
    "detect_convergence",
    "run_series",
    "steady_state_report",
    "enable",
    "disable",
    "enabled",
    "active",
    "capture",
    "config",
    "snapshot",
    "merge_snapshot",
    "save_timeseries",
    "load_timeseries",
]

TIMESERIES_FORMAT = "repro-timeseries-v1"

#: Scalar per-window columns (all int64).  ``lat_sum`` divided by
#: ``ejected`` gives the window's mean packet latency; ``occupancy`` is
#: the total buffered-flit count sampled at the window's closing edge.
WINDOW_COLS = (
    "run", "index", "start", "cycles", "injected", "ejected",
    "lat_sum", "credit_stalls", "forwarded", "occupancy",
)


class TimeseriesRecorder:
    """Columnar per-window store fed by the simulator at window edges.

    Parameters
    ----------
    window:
        Window width in cycles.  The simulator flushes a row whenever the
        absolute cycle count crosses a multiple of ``window`` (plus one
        final partial row at the end of a run).
    capacity:
        Initially preallocated rows; buffers double when exceeded (no
        ring overwrite — windows are few compared to packets).
    top_links:
        How many of the window's hottest directed links to record (ids
        and flit counts, hottest first, ties broken by link id).
    """

    def __init__(self, window: int = 100, capacity: int = 1024, top_links: int = 4):
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if top_links < 0:
            raise ConfigurationError(f"top_links must be >= 0, got {top_links}")
        self.window = int(window)
        self.top_links = int(top_links)
        self.runs: List[dict] = []
        self.n_windows = 0
        self._cap = int(capacity)
        self._col: Dict[str, np.ndarray] = {
            c: np.zeros(self._cap, dtype=np.int64) for c in WINDOW_COLS
        }
        # With top_links=0 the per-window link columns carry no data, so
        # they stay fixed zero-row stubs: no allocation with capacity,
        # no copies on growth, nothing folded on merge.
        rows = self._cap if self.top_links else 0
        self._top_ids = np.full((rows, self.top_links), -1, dtype=np.int64)
        self._top_flits = np.zeros((rows, self.top_links), dtype=np.int64)
        self._next_index = 0  # window index within the current run
        #: Optional live hook: called as ``on_window(run_meta, row_dict)``
        #: after every recorded window (the run monitor's heartbeat feed).
        self.on_window: Optional[Callable[[dict, dict], None]] = None

    # --------------------------------------------------------- recording
    def begin_run(self, **meta) -> int:
        """Register one simulator run; returns its run id."""
        self.runs.append(dict(meta))
        self._next_index = 0
        return len(self.runs) - 1

    def annotate_run(self, run: int, **fields) -> None:
        """Attach late facts (e.g. the realized warmup length) to a run."""
        if 0 <= run < len(self.runs):
            self.runs[run].update(fields)

    def _grow_to(self, rows: int) -> None:
        if rows <= self._cap:
            return
        cap = self._cap
        while cap < rows:
            cap *= 2
        for c, arr in self._col.items():
            grown = np.zeros(cap, dtype=np.int64)
            grown[: self._cap] = arr
            self._col[c] = grown
        if self.top_links:
            ids = np.full((cap, self.top_links), -1, dtype=np.int64)
            ids[: self._cap] = self._top_ids
            self._top_ids = ids
            flits = np.zeros((cap, self.top_links), dtype=np.int64)
            flits[: self._cap] = self._top_flits
            self._top_flits = flits
        self._cap = cap

    def record_window(
        self,
        run: int,
        *,
        start: int,
        cycles: int,
        injected: int,
        ejected: int,
        lat_sum: int,
        credit_stalls: int,
        forwarded: int,
        occupancy: int,
        link_flits: Optional[Sequence[int]] = None,
    ) -> None:
        """Append one window row (the simulator calls this at flush)."""
        row = self.n_windows
        self._grow_to(row + 1)
        col = self._col
        index = self._next_index
        self._next_index += 1
        col["run"][row] = run
        col["index"][row] = index
        col["start"][row] = start
        col["cycles"][row] = cycles
        col["injected"][row] = injected
        col["ejected"][row] = ejected
        col["lat_sum"][row] = lat_sum
        col["credit_stalls"][row] = credit_stalls
        col["forwarded"][row] = forwarded
        col["occupancy"][row] = occupancy
        if self.top_links and link_flits is not None:
            arr = np.asarray(link_flits, dtype=np.int64)
            k = min(self.top_links, len(arr))
            # Deterministic top-k: hottest first, ties by ascending id.
            order = np.lexsort((np.arange(len(arr)), -arr))[:k]
            self._top_ids[row, :k] = order
            self._top_flits[row, :k] = arr[order]
        self.n_windows += 1
        hook = self.on_window
        if hook is not None:
            meta = self.runs[run] if 0 <= run < len(self.runs) else {}
            hook(meta, {c: int(col[c][row]) for c in WINDOW_COLS})

    # --------------------------------------------------- snapshot / merge
    def snapshot(self) -> dict:
        """Everything recorded so far as a plain dict of numpy arrays.

        Buffer capacity is deliberately excluded: a grown serial recorder
        and fresh per-worker recorders must snapshot identically.
        """
        n = self.n_windows
        snap = {
            "format": TIMESERIES_FORMAT,
            "window": self.window,
            "top_links": self.top_links,
            "n_runs": len(self.runs),
            "n_windows": n,
            "runs": [dict(r) for r in self.runs],
        }
        for c in WINDOW_COLS:
            snap[f"win_{c}"] = self._col[c][:n].copy()
        if self.top_links:
            snap["win_top_ids"] = self._top_ids[:n].copy()
            snap["win_top_flits"] = self._top_flits[:n].copy()
        else:
            # Schema-stable zero-width columns: same keys, shape (n, 0).
            snap["win_top_ids"] = np.full((n, 0), -1, dtype=np.int64)
            snap["win_top_flits"] = np.zeros((n, 0), dtype=np.int64)
        return snap

    def merge(self, snap: Mapping) -> None:
        """Fold a worker snapshot into this recorder.

        Run ids are offset past this recorder's runs, so merging per-cell
        snapshots in task order reproduces exactly the series a serial
        run under one recorder would have recorded.
        """
        if snap.get("format") != TIMESERIES_FORMAT:
            raise ConfigurationError(
                f"cannot merge timeseries snapshot of format {snap.get('format')!r}"
            )
        if int(snap["window"]) != self.window or int(snap["top_links"]) != self.top_links:
            raise ConfigurationError(
                "cannot merge timeseries snapshots with different window "
                f"({snap['window']} vs {self.window}) or top_links "
                f"({snap['top_links']} vs {self.top_links})"
            )
        run_off = len(self.runs)
        self.runs.extend(dict(r) for r in snap["runs"])
        n = int(snap["n_windows"])
        if not n:
            return
        row = self.n_windows
        self._grow_to(row + n)
        for c in WINDOW_COLS:
            vals = np.asarray(snap[f"win_{c}"], dtype=np.int64)
            if c == "run":
                vals = vals + run_off
            self._col[c][row : row + n] = vals
        if self.top_links:
            self._top_ids[row : row + n] = np.asarray(
                snap["win_top_ids"], dtype=np.int64
            )
            self._top_flits[row : row + n] = np.asarray(
                snap["win_top_flits"], dtype=np.int64
            )
        self.n_windows += n


# ------------------------------------------------------------ analysis
def spans_converged(
    values: Sequence[float], check_windows: int, rel_tol: float
) -> bool:
    """Moving-window convergence test over the tail of ``values``.

    Compares the mean of the last ``check_windows`` values against the
    mean of the ``check_windows`` before them: converged when the
    relative difference is within ``rel_tol``.  ``False`` while fewer
    than ``2 * check_windows`` values exist or when either span contains
    a NaN (a window that delivered nothing has no latency).
    """
    m = int(check_windows)
    if m < 1 or len(values) < 2 * m:
        return False
    tail = [float(v) for v in values[-2 * m :]]
    if any(math.isnan(v) for v in tail):
        return False
    a = sum(tail[:m]) / m
    b = sum(tail[m:]) / m
    denom = max(abs(a), abs(b))
    if denom == 0.0:
        return True  # both spans identically zero: flat is converged
    return abs(b - a) <= rel_tol * denom


def detect_convergence(
    series: Sequence[Sequence[float]], check_windows: int, rel_tol: float
) -> Optional[int]:
    """First window count after which *every* series tests converged.

    Returns the number of windows consumed (``>= 2 * check_windows``),
    or ``None`` if the series never converge.
    """
    if not series:
        return None
    n = min(len(s) for s in series)
    for t in range(2 * int(check_windows), n + 1):
        if all(spans_converged(s[:t], check_windows, rel_tol) for s in series):
            return t
    return None


def run_series(snap: Mapping, run: int) -> Dict[str, np.ndarray]:
    """One run's windows as derived per-window series.

    Returns ``start``/``cycles`` plus ``injection_rate`` and
    ``ejection_rate`` (flits per host per cycle, using the run's
    ``n_hosts`` metadata when present) and ``latency`` (mean cycles of
    the window's ejections, NaN for empty windows), ordered by window
    index.
    """
    mask = np.asarray(snap["win_run"], dtype=np.int64) == run
    order = np.argsort(np.asarray(snap["win_index"], dtype=np.int64)[mask])
    cols = {c: np.asarray(snap[f"win_{c}"], dtype=np.int64)[mask][order] for c in WINDOW_COLS}
    runs = snap.get("runs", [])
    meta = runs[run] if 0 <= run < len(runs) else {}
    hosts = max(1, int(meta.get("n_hosts", 1)))
    cycles = np.maximum(cols["cycles"], 1).astype(np.float64)
    ejected = cols["ejected"].astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        latency = np.where(ejected > 0, cols["lat_sum"] / ejected, np.nan)
    return {
        "start": cols["start"],
        "cycles": cols["cycles"],
        "injected": cols["injected"],
        "ejected": cols["ejected"],
        "injection_rate": cols["injected"] / (cycles * hosts),
        "ejection_rate": ejected / (cycles * hosts),
        "latency": latency,
        "credit_stalls": cols["credit_stalls"],
        "forwarded": cols["forwarded"],
        "occupancy": cols["occupancy"],
    }


def steady_state_report(
    snap: Mapping, *, check_windows: int = 4, rel_tol: float = 0.05
) -> dict:
    """Per-run warmup-sufficiency verdicts from a recorded snapshot.

    For every run, replays :func:`detect_convergence` over the windowed
    ejection rate and mean latency and compares the first converged cycle
    against the warmup the run actually used (``warmup_cycles_used`` if
    the simulator annotated it, else the configured ``warmup_cycles``).
    A run whose series never converge — or converge only after warmup
    ended — had an insufficient warmup: its measurement window includes
    transient behaviour.
    """
    runs = []
    n_sufficient = 0
    n_converged = 0
    for r, meta in enumerate(snap.get("runs", [])):
        series = run_series(snap, r)
        t = detect_convergence(
            [series["ejection_rate"].tolist(), series["latency"].tolist()],
            check_windows, rel_tol,
        )
        warmup = int(meta.get("warmup_cycles_used", meta.get("warmup_cycles", 0)))
        converged_at = None
        if t is not None and t >= 1:
            ends = series["start"] + series["cycles"]
            converged_at = int(ends[t - 1])
        sufficient = converged_at is not None and converged_at <= warmup
        n_converged += converged_at is not None
        n_sufficient += sufficient
        runs.append(
            {
                "run": r,
                "scheme": meta.get("scheme"),
                "mechanism": meta.get("mechanism"),
                "rate": meta.get("rate"),
                "warmup_cycles": warmup,
                "converged_at_cycle": converged_at,
                "warmup_sufficient": sufficient,
            }
        )
    return {
        "check_windows": int(check_windows),
        "rel_tol": float(rel_tol),
        "n_runs": len(runs),
        "n_converged": n_converged,
        "n_warmup_sufficient": n_sufficient,
        "runs": runs,
    }


# ------------------------------------------------------- persistence
def save_timeseries(path, snap: Optional[Mapping] = None):
    """Write a snapshot as a compressed ``.npz``; returns the path.

    With ``snap=None`` the active recorder's snapshot is written (a
    no-op returning ``None`` when the recorder is disabled).
    """
    from pathlib import Path

    if snap is None:
        snap = snapshot()
        if snap is None:
            return None
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = dict(snap)
    doc["runs"] = json.dumps(doc.get("runs", []))
    np.savez_compressed(path, **doc)
    return path


def load_timeseries(path) -> dict:
    """Load a :func:`save_timeseries` file back into snapshot form."""
    with np.load(path, allow_pickle=False) as data:
        snap = {}
        for key in data.files:
            arr = data[key]
            snap[key] = arr.item() if arr.ndim == 0 else arr
    snap["runs"] = json.loads(str(snap.get("runs", "[]")))
    for key in ("window", "top_links", "n_runs", "n_windows"):
        if key in snap:
            snap[key] = int(snap[key])
    snap["format"] = str(snap.get("format", ""))
    if snap["format"] != TIMESERIES_FORMAT:
        raise ConfigurationError(
            f"{path} is not a {TIMESERIES_FORMAT} file (format={snap['format']!r})"
        )
    return snap


# --------------------------------------------------------- module state
#: The process's active recorder, or ``None`` when time series are off.
#: The simulator reads this once at construction, exactly like
#: ``metrics._active`` / ``trace._active``.
_active: Optional[TimeseriesRecorder] = None


def enable(
    window: int = 100, capacity: int = 1024, top_links: int = 4
) -> TimeseriesRecorder:
    """Install (and return) the process's active recorder."""
    global _active
    _active = TimeseriesRecorder(
        window=window, capacity=capacity, top_links=top_links
    )
    return _active


def disable() -> None:
    """Turn the recorder off; simulators constructed after this pay nothing."""
    global _active
    _active = None


def enabled() -> bool:
    return _active is not None


def active() -> Optional[TimeseriesRecorder]:
    return _active


def config() -> Optional[dict]:
    """The active recorder's construction parameters (for pool workers)."""
    rec = _active
    if rec is None:
        return None
    return {"window": rec.window, "top_links": rec.top_links}


@contextmanager
def capture(**kwargs) -> Iterator[TimeseriesRecorder]:
    """Divert recording to a fresh recorder for the duration of the block.

    Pool workers scope one task's series with this (parameterised by the
    parent's :func:`config`); the previous state is restored on exit.
    """
    global _active
    prev = _active
    fresh = TimeseriesRecorder(**kwargs)
    _active = fresh
    try:
        yield fresh
    finally:
        _active = prev


def snapshot() -> Optional[dict]:
    """Snapshot of the active recorder, or ``None`` when disabled."""
    rec = _active
    return None if rec is None else rec.snapshot()


def merge_snapshot(snap: Optional[Mapping]) -> None:
    """Merge a worker snapshot into the active recorder (no-op if either
    side is absent)."""
    rec = _active
    if rec is not None and snap is not None:
        rec.merge(snap)
