"""Lightweight in-process metrics: counters, gauges, histograms, spans.

Design constraints, in priority order:

1. **Near-zero overhead when disabled.**  Metrics are off by default; the
   module-level accessors (:func:`counter`, :func:`histogram`,
   :func:`span`, ...) then return a shared :data:`NOOP` object whose
   methods do nothing, so instrumented hot paths pay one module-attribute
   load and an ``is None`` test — no allocation, no dict lookup, no
   branching inside the metric itself.  Code on the very hottest loops
   (the simulator's per-cycle phases) goes further and accumulates plain
   local integers, publishing once per run.
2. **Snapshot/merge semantics.**  A registry serialises to a plain
   JSON-able dict (:meth:`MetricsRegistry.snapshot`) and any snapshot can
   be merged into another registry (:meth:`MetricsRegistry.merge`):
   counters and histograms add, arrays add element-wise, gauges keep the
   maximum, ``info`` annotations update.  Merging is commutative and
   associative, so per-worker snapshots from a process pool aggregate to
   exactly the totals a serial run would have recorded, whatever the
   worker count or completion order.
3. **Process-local.**  One active registry per process, installed with
   :func:`enable` / scoped with :func:`capture`.  Worker processes start
   with metrics disabled; the pool plumbing in
   :mod:`repro.core.cache` / :mod:`repro.netsim.parallel` captures a
   fresh registry per task and ships the snapshot home.

Metric kinds:

- **counter** — monotonically increasing int (``inc``);
- **gauge** — last-set float (``set``); merges by max;
- **histogram** — count/total/min/max plus power-of-two bucket counts
  (``observe``); cheap, bounded, and mergeable;
- **timer** — a histogram of seconds fed by ``with span(name):`` blocks
  (kept in a separate namespace so wall-time metrics are easy to exclude
  from determinism comparisons);
- **array** — a fixed-length int64 accumulator (``add``), e.g. per
  directed-link flit counts; merges element-wise.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "NOOP",
    "Counter",
    "Gauge",
    "Histogram",
    "ArrayMetric",
    "MetricsRegistry",
    "enable",
    "disable",
    "enabled",
    "active",
    "capture",
    "counter",
    "gauge",
    "histogram",
    "array",
    "span",
    "annotate",
    "snapshot",
    "merge_snapshot",
]

SNAPSHOT_FORMAT = "repro-metrics-v1"


class _Noop:
    """Absorbs every metric operation — the disabled-mode fast path.

    A single shared instance doubles as counter, gauge, histogram, array
    and span context manager, so call sites never branch on enablement.
    """

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def add(self, values) -> None:
        pass

    def __enter__(self) -> "_Noop":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NOOP = _Noop()


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-set value; merges by maximum (peak semantics)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


def _bucket_of(value: float) -> int:
    """Power-of-two bucket index: smallest ``e`` with ``value <= 2**e``.

    Non-positive values land in a dedicated sentinel bucket so the log
    bucketing never raises.
    """
    if value <= 0.0:
        return -1075  # below the smallest subnormal exponent
    return math.frexp(value)[1]


class Histogram:
    """count / total / min / max plus power-of-two bucket counts."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        b = _bucket_of(v)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def merge_dict(self, doc: Mapping) -> None:
        self.count += int(doc["count"])
        self.total += float(doc["total"])
        if doc.get("min") is not None:
            self.min = min(self.min, float(doc["min"]))
        if doc.get("max") is not None:
            self.max = max(self.max, float(doc["max"]))
        for k, v in doc.get("buckets", {}).items():
            k = int(k)
            self.buckets[k] = self.buckets.get(k, 0) + int(v)


class ArrayMetric:
    """Fixed-length int64 accumulator (e.g. flits per directed link)."""

    __slots__ = ("name", "values")

    def __init__(self, name: str, size: int):
        self.name = name
        self.values = np.zeros(int(size), dtype=np.int64)

    def _grown_to(self, size: int) -> np.ndarray:
        if size > len(self.values):
            grown = np.zeros(size, dtype=np.int64)
            grown[: len(self.values)] = self.values
            self.values = grown
        return self.values

    def add(self, values: Sequence[int]) -> None:
        arr = np.asarray(values, dtype=np.int64)
        self._grown_to(len(arr))[: len(arr)] += arr


class _Span:
    """Context manager feeding one wall-time observation into a timer."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram):
        self._hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._hist.observe(time.perf_counter() - self._t0)
        return False


class MetricsRegistry:
    """One process's metric store; see the module docstring for semantics."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.timers: Dict[str, Histogram] = {}
        self.arrays: Dict[str, ArrayMetric] = {}
        self.info: Dict[str, object] = {}

    # ------------------------------------------------------------ access
    def counter(self, name: str) -> Counter:
        found = self.counters.get(name)
        if found is None:
            found = self.counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        found = self.gauges.get(name)
        if found is None:
            found = self.gauges[name] = Gauge(name)
        return found

    def histogram(self, name: str) -> Histogram:
        found = self.histograms.get(name)
        if found is None:
            found = self.histograms[name] = Histogram(name)
        return found

    def array(self, name: str, size: int = 0) -> ArrayMetric:
        found = self.arrays.get(name)
        if found is None:
            found = self.arrays[name] = ArrayMetric(name, size)
        return found

    def span(self, name: str) -> _Span:
        found = self.timers.get(name)
        if found is None:
            found = self.timers[name] = Histogram(name)
        return _Span(found)

    def annotate(self, key: str, value) -> None:
        """Attach a JSON-able fact (scale, topology hash, ...) to the run."""
        self.info[key] = value

    # --------------------------------------------------- snapshot / merge
    def snapshot(self) -> dict:
        """A plain JSON-able dict of everything recorded so far."""
        return {
            "format": SNAPSHOT_FORMAT,
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self.histograms.items())
            },
            "timers": {n: h.to_dict() for n, h in sorted(self.timers.items())},
            "arrays": {
                n: a.values.tolist() for n, a in sorted(self.arrays.items())
            },
            "info": dict(self.info),
        }

    def merge(self, snap: Mapping) -> None:
        """Fold a :meth:`snapshot` document into this registry.

        Commutative and associative across snapshots: counters,
        histograms, timers and arrays add; gauges keep the max; ``info``
        annotations are updated (last merge wins on key collision).
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snap.get("gauges", {}).items():
            g = self.gauge(name)
            g.value = max(g.value, float(value))
        for name, doc in snap.get("histograms", {}).items():
            self.histogram(name).merge_dict(doc)
        for name, doc in snap.get("timers", {}).items():
            found = self.timers.get(name)
            if found is None:
                found = self.timers[name] = Histogram(name)
            found.merge_dict(doc)
        for name, values in snap.get("arrays", {}).items():
            self.array(name).add(values)
        self.info.update(snap.get("info", {}))

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.timers.clear()
        self.arrays.clear()
        self.info.clear()


# --------------------------------------------------------- module state
#: The process's active registry, or ``None`` when metrics are disabled.
#: Hot paths read this attribute directly (``metrics._active is None`` is
#: the whole disabled-mode cost).
_active: Optional[MetricsRegistry] = None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) the process's active registry."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable() -> None:
    """Turn metrics off; accessors return :data:`NOOP` again."""
    global _active
    _active = None


def enabled() -> bool:
    return _active is not None


def active() -> Optional[MetricsRegistry]:
    return _active


@contextmanager
def capture() -> Iterator[MetricsRegistry]:
    """Divert metrics to a fresh registry for the duration of the block.

    Used by pool workers to scope one task's metrics; the previous active
    registry (or disabled state) is restored on exit.
    """
    global _active
    prev = _active
    fresh = MetricsRegistry()
    _active = fresh
    try:
        yield fresh
    finally:
        _active = prev


def counter(name: str):
    reg = _active
    return NOOP if reg is None else reg.counter(name)


def gauge(name: str):
    reg = _active
    return NOOP if reg is None else reg.gauge(name)


def histogram(name: str):
    reg = _active
    return NOOP if reg is None else reg.histogram(name)


def array(name: str, size: int = 0):
    reg = _active
    return NOOP if reg is None else reg.array(name, size)


def span(name: str):
    reg = _active
    return NOOP if reg is None else reg.span(name)


def annotate(key: str, value) -> None:
    reg = _active
    if reg is not None:
        reg.annotate(key, value)


def snapshot() -> Optional[dict]:
    """Snapshot of the active registry, or ``None`` when disabled."""
    reg = _active
    return None if reg is None else reg.snapshot()


def merge_snapshot(snap: Optional[Mapping]) -> None:
    """Merge a worker snapshot into the active registry (no-op if either
    side is absent)."""
    reg = _active
    if reg is not None and snap:
        reg.merge(snap)
