"""The MPTCP-style throughput model (Eq. 1 of the paper)."""

from repro.model.throughput import ThroughputResult, model_throughput

__all__ = ["ThroughputResult", "model_throughput"]
