"""Throughput model for multi-path routing (Eq. 1, after Yuan et al. [2]).

Each flow ``(s, d)`` is realised as ``k`` sub-flows, one per selected path
(an MPTCP-like transport).  The model:

1. counts, for every link, how many sub-flows of the whole pattern traverse
   it (``X``); the link load is ``X / C`` with unit capacities;
2. rates each sub-flow at the reciprocal of the *maximum* load along its
   path — the bottleneck link shared equally among its users;
3. sums a flow's sub-flow rates:  ``T(s, d) = Σ_n 1 / max load on path_n``.

Paths include the source's injection link (host -> switch) and the
destination's ejection link (switch -> host).  Because all ``k`` sub-flows
of a flow cross the same injection link, the per-flow rate is naturally
capped at 1 (full node bandwidth) and the per-node aggregate — the
"normalized per node throughput" of Figures 4-6 — is directly comparable to
the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.cache import PathCache
from repro.errors import ModelError
from repro.topology.jellyfish import Jellyfish
from repro.traffic.patterns import Pattern

__all__ = ["ThroughputResult", "model_throughput"]


@dataclass(frozen=True)
class ThroughputResult:
    """Output of :func:`model_throughput` for one pattern.

    Attributes
    ----------
    flows:
        The (source host, destination host) pairs, in input order.
    per_flow:
        Modelled rate of each flow (same order), in units of link capacity.
    link_load:
        Sub-flow usage count per directed link id (the model's ``X``).
    n_hosts:
        Host count of the topology the model ran on.
    """

    flows: Tuple[Tuple[int, int], ...]
    per_flow: np.ndarray
    link_load: np.ndarray
    n_hosts: int

    def mean_per_flow(self) -> float:
        """Average modelled rate over flows."""
        return float(self.per_flow.mean()) if len(self.per_flow) else 0.0

    def min_per_flow(self) -> float:
        """Worst flow rate — the pattern's straggler."""
        return float(self.per_flow.min()) if len(self.per_flow) else 0.0

    def per_node(self) -> np.ndarray:
        """Aggregate rate per source host (sum of its flows' rates)."""
        agg = np.zeros(self.n_hosts)
        for (s, _), r in zip(self.flows, self.per_flow):
            agg[s] += r
        return agg

    def mean_per_node(self) -> float:
        """Average over *sending* hosts of the per-node aggregate rate.

        This is the paper's normalized per-node throughput: 1.0 means each
        sender sustains full injection bandwidth.
        """
        if not self.flows:
            return 0.0
        agg = self.per_node()
        senders = np.unique([s for s, _ in self.flows])
        return float(agg[senders].mean())

    def max_link_utilisation(self) -> float:
        """Peak link load after rating, as a sanity diagnostic (<= 1 + eps)."""
        # Recompute actual carried load per link from the rated sub-flows is
        # owned by tests; here report the raw usage-count maximum.
        return float(self.link_load.max()) if self.link_load.size else 0.0


def model_throughput(
    topology: Jellyfish,
    flows: Pattern | Iterable[Tuple[int, int]],
    paths: PathCache,
) -> ThroughputResult:
    """Run the Eq. 1 throughput model for ``flows`` on ``topology``.

    ``paths`` supplies the k paths per switch pair (so the same call
    evaluates KSP/rKSP/EDKSP/rEDKSP/SP by swapping the cache's scheme).
    """
    flow_list: List[Tuple[int, int]] = [(int(s), int(d)) for s, d in flows]
    if not flow_list:
        raise ModelError("the flow set is empty")
    for s, d in flow_list:
        if not (0 <= s < topology.n_hosts and 0 <= d < topology.n_hosts):
            raise ModelError(
                f"flow ({s}, {d}) outside host range [0, {topology.n_hosts})"
            )
        if s == d:
            raise ModelError(f"self-flow ({s}, {d}) has no network usage")

    # Resolve every flow to its sub-flow link-id lists once; accumulate
    # usage counts along the way.
    load = np.zeros(topology.n_links, dtype=np.float64)
    subflow_links: List[List[np.ndarray]] = []
    for s, d in flow_list:
        ss = topology.switch_of_host(s)
        ds = topology.switch_of_host(d)
        pathset = paths.get(ss, ds)
        per_flow_links: List[np.ndarray] = []
        inj = topology.injection_link(s)
        ej = topology.ejection_link(d)
        for path in pathset:
            ids = topology.path_link_ids(path.nodes)
            arr = np.asarray([inj, *ids, ej], dtype=np.int64)
            per_flow_links.append(arr)
            np.add.at(load, arr, 1.0)
        subflow_links.append(per_flow_links)

    # Rate each sub-flow by its bottleneck and sum per flow (Eq. 1).
    per_flow = np.empty(len(flow_list), dtype=np.float64)
    for i, per_flow_links in enumerate(subflow_links):
        total = 0.0
        for arr in per_flow_links:
            total += 1.0 / float(load[arr].max())
        per_flow[i] = total

    return ThroughputResult(
        flows=tuple(flow_list),
        per_flow=per_flow,
        link_load=load,
        n_hosts=topology.n_hosts,
    )
