"""Jellyfish (random regular graph) topology substrate.

The paper's switch-level topology is an ``RRG(N, x, y)``: ``N`` switches,
each with ``x`` ports of which ``y`` connect to other switches and ``x - y``
connect to compute nodes.  This package builds such topologies from scratch
(using the incremental construction from the Jellyfish paper), wraps them
with host bookkeeping, and computes the topological metrics reported in
Table I.
"""

from repro.topology.rrg import random_regular_graph, is_regular, is_connected
from repro.topology.jellyfish import Jellyfish
from repro.topology.metrics import (
    average_shortest_path_length,
    diameter,
    shortest_path_length_histogram,
    bisection_links,
)
from repro.topology.serialization import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)

__all__ = [
    "random_regular_graph",
    "is_regular",
    "is_connected",
    "Jellyfish",
    "average_shortest_path_length",
    "diameter",
    "shortest_path_length_histogram",
    "bisection_links",
    "save_topology",
    "load_topology",
    "topology_to_dict",
    "topology_from_dict",
]
