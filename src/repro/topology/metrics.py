"""Topological metrics for Jellyfish instances (Table I support).

All metrics operate on adjacency lists (``adj[u]`` = neighbours of ``u``)
and use plain BFS, which is exact for the unweighted switch graph.  For
large topologies the all-pairs metrics accept a ``sample`` bound so the
paper-scale RRG(2880, 48, 38) can be characterised in seconds.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "bfs_distances",
    "average_shortest_path_length",
    "diameter",
    "shortest_path_length_histogram",
    "bisection_links",
]


def bfs_distances(adj: Sequence[Sequence[int]], source: int) -> np.ndarray:
    """Hop distances from ``source`` to every node (-1 if unreachable)."""
    # Deferred import: repro.core lazily imports topology modules, so a
    # module-level import here would be circular.
    from repro.core.kernels import kernels_for

    return np.asarray(kernels_for(adj).field(source).dist, dtype=np.int64)


def _sources(n: int, sample: int | None, seed: SeedLike) -> List[int]:
    if sample is None or sample >= n:
        return list(range(n))
    rng = ensure_rng(seed)
    return sorted(int(s) for s in rng.choice(n, size=sample, replace=False))


def average_shortest_path_length(
    adj: Sequence[Sequence[int]],
    sample: int | None = None,
    seed: SeedLike = None,
) -> float:
    """Mean hop distance over ordered switch pairs (the Table I metric).

    With ``sample`` set, averages over BFS trees from that many random
    sources — an unbiased estimate whose error shrinks as 1/sqrt(sample).
    """
    n = len(adj)
    if n < 2:
        return 0.0
    total = 0
    count = 0
    for s in _sources(n, sample, seed):
        dist = bfs_distances(adj, s)
        reach = dist[dist > 0]
        total += int(reach.sum())
        count += reach.size
    return total / count if count else float("inf")


def diameter(
    adj: Sequence[Sequence[int]],
    sample: int | None = None,
    seed: SeedLike = None,
) -> int:
    """Maximum hop distance (over sampled sources if ``sample`` is set)."""
    best = 0
    for s in _sources(len(adj), sample, seed):
        dist = bfs_distances(adj, s)
        if (dist < 0).any():
            return -1  # disconnected
        best = max(best, int(dist.max()))
    return best


def shortest_path_length_histogram(
    adj: Sequence[Sequence[int]],
    sample: int | None = None,
    seed: SeedLike = None,
) -> Dict[int, int]:
    """Histogram {hops: ordered-pair count} of shortest path lengths."""
    hist: Dict[int, int] = {}
    for s in _sources(len(adj), sample, seed):
        dist = bfs_distances(adj, s)
        lengths, counts = np.unique(dist[dist > 0], return_counts=True)
        for length, c in zip(lengths.tolist(), counts.tolist()):
            hist[length] = hist.get(length, 0) + c
    return hist


def bisection_links(
    adj: Sequence[Sequence[int]],
    trials: int = 16,
    seed: SeedLike = None,
) -> int:
    """Estimated bisection width: min cut links over random equal splits.

    Random regular graphs are good expanders, so random balanced bisections
    are close to the true bisection width; this gives the quick capacity
    check used when sizing experiments (not a paper table).
    """
    n = len(adj)
    if n < 2:
        return 0
    rng = ensure_rng(seed)
    best = None
    nodes = np.arange(n)
    for _ in range(trials):
        perm = rng.permutation(nodes)
        side = np.zeros(n, dtype=bool)
        side[perm[: n // 2]] = True
        cut = sum(
            1 for u in range(n) for v in adj[u] if u < v and side[u] != side[v]
        )
        best = cut if best is None else min(best, cut)
    return int(best)
