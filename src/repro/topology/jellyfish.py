"""The Jellyfish topology: an RRG of switches plus attached compute nodes.

``Jellyfish(n_switches, ports, uplinks)`` mirrors the paper's
``RRG(N, x, y)`` notation: ``N`` switches with ``x`` ports each, ``y`` of
which connect to other switches, leaving ``x - y`` compute nodes ("hosts")
per switch.  Hosts are numbered ``0 .. N*(x-y) - 1`` with host ``h`` attached
to switch ``h // (x - y)`` — the linear host layout assumed by the paper's
"linear mapping".

The class also assigns a stable integer id to every *directed* switch-to-
switch link (plus per-host injection/ejection links), which the throughput
model and both simulators use to index NumPy load/occupancy arrays instead
of hashing edge tuples in inner loops.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import TopologyError
from repro.topology.rrg import random_regular_graph
from repro.utils.rng import SeedLike

__all__ = ["Jellyfish"]


class Jellyfish:
    """A Jellyfish ``RRG(N, x, y)`` instance.

    Parameters
    ----------
    n_switches:
        Number of switches ``N``.
    ports:
        Ports per switch ``x``.
    uplinks:
        Ports per switch used for switch-to-switch links ``y``
        (``0 <= y <= min(x, N-1)``); each switch hosts ``x - y`` compute
        nodes.
    seed:
        Seed (or generator) for the random construction.
    adjacency:
        Optional pre-built adjacency lists (must be ``uplinks``-regular);
        when given, no random construction happens — used by tests and by
        experiments that re-load a saved topology.
    """

    def __init__(
        self,
        n_switches: int,
        ports: int,
        uplinks: int,
        seed: SeedLike = None,
        adjacency: Sequence[Sequence[int]] | None = None,
    ):
        if ports < uplinks:
            raise TopologyError(
                f"ports (x={ports}) must be >= uplinks (y={uplinks})"
            )
        if uplinks >= n_switches:
            raise TopologyError(
                f"uplinks (y={uplinks}) must be < number of switches (N={n_switches})"
            )
        self.n_switches = int(n_switches)
        self.ports = int(ports)
        self.uplinks = int(uplinks)
        self.hosts_per_switch = self.ports - self.uplinks
        self.n_hosts = self.n_switches * self.hosts_per_switch

        if adjacency is not None:
            adj = [sorted(int(v) for v in nbrs) for nbrs in adjacency]
            if len(adj) != self.n_switches:
                raise TopologyError(
                    f"adjacency has {len(adj)} switches, expected {self.n_switches}"
                )
            for u, nbrs in enumerate(adj):
                if len(nbrs) != self.uplinks:
                    raise TopologyError(
                        f"switch {u} has degree {len(nbrs)}, expected {self.uplinks}"
                    )
                for v in nbrs:
                    if not (0 <= v < self.n_switches) or v == u:
                        raise TopologyError(f"invalid neighbour {v} of switch {u}")
                    if u not in adj[v]:
                        raise TopologyError(f"edge ({u},{v}) is not symmetric")
            self.adjacency: List[List[int]] = adj
        else:
            self.adjacency = random_regular_graph(self.n_switches, self.uplinks, seed)

        # Directed link ids: switch->switch links first, then per-host
        # injection links (host -> switch), then ejection (switch -> host).
        self._link_id: Dict[Tuple[int, int], int] = {}
        links: List[Tuple[int, int]] = []
        for u in range(self.n_switches):
            for v in self.adjacency[u]:
                self._link_id[(u, v)] = len(links)
                links.append((u, v))
        self.n_switch_links = len(links)  # == N * y (directed)
        self.injection_link_base = self.n_switch_links
        self.ejection_link_base = self.n_switch_links + self.n_hosts
        self.n_links = self.n_switch_links + 2 * self.n_hosts
        self._links = links
        self._kernels = None

    # -------------------------------------------------------------- kernels
    @property
    def kernels(self):
        """Shared BFS kernels for the switch graph (built lazily, reused).

        The returned :class:`~repro.core.kernels.GraphKernels` carries the
        CSR export, the bitset neighbour masks, and the per-source level
        field cache every path query on this instance shares.  It also
        implements the sequence protocol, so it substitutes for
        ``self.adjacency`` anywhere an adjacency is accepted.
        """
        if self._kernels is None:
            # Imported here: repro.core packages pull in this module.
            from repro.core.kernels import GraphKernels

            self._kernels = GraphKernels(self.adjacency)
        return self._kernels

    def csr_arrays(self):
        """The switch graph in CSR form: ``(indptr, indices)`` int64 arrays.

        ``indices[indptr[u]:indptr[u+1]]`` are the (sorted) neighbours of
        switch ``u`` — the layout the vectorized BFS kernels consume.
        """
        return self.kernels.csr()

    # ------------------------------------------------------------------ ids
    def switch_of_host(self, host: int) -> int:
        """Switch that host ``host`` attaches to (linear layout)."""
        if not (0 <= host < self.n_hosts):
            raise TopologyError(f"host {host} out of range [0, {self.n_hosts})")
        return host // self.hosts_per_switch

    def hosts_of_switch(self, switch: int) -> range:
        """Hosts attached to ``switch``."""
        if not (0 <= switch < self.n_switches):
            raise TopologyError(f"switch {switch} out of range [0, {self.n_switches})")
        base = switch * self.hosts_per_switch
        return range(base, base + self.hosts_per_switch)

    # ---------------------------------------------------------------- links
    def link_id(self, u: int, v: int) -> int:
        """Id of the directed switch link ``u -> v``."""
        try:
            return self._link_id[(u, v)]
        except KeyError:
            raise TopologyError(f"no switch link {u} -> {v}") from None

    def injection_link(self, host: int) -> int:
        """Id of the host's injection link (host -> its switch)."""
        if not (0 <= host < self.n_hosts):
            raise TopologyError(f"host {host} out of range [0, {self.n_hosts})")
        return self.injection_link_base + host

    def ejection_link(self, host: int) -> int:
        """Id of the host's ejection link (its switch -> host)."""
        if not (0 <= host < self.n_hosts):
            raise TopologyError(f"host {host} out of range [0, {self.n_hosts})")
        return self.ejection_link_base + host

    def switch_links(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all directed switch links ``(u, v)`` in id order."""
        return iter(self._links)

    def path_link_ids(self, path: Sequence[int]) -> List[int]:
        """Directed switch-link ids along a switch path ``[s0, s1, ..., sm]``."""
        return [self._link_id[(path[i], path[i + 1])] for i in range(len(path) - 1)]

    # ---------------------------------------------------------------- misc
    def undirected_edges(self) -> List[Tuple[int, int]]:
        """All undirected switch edges as sorted ``(u, v)`` with ``u < v``."""
        return [(u, v) for (u, v) in self._links if u < v]

    def degree(self) -> int:
        """Switch-to-switch degree (``y``)."""
        return self.uplinks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Jellyfish(RRG(N={self.n_switches}, x={self.ports}, "
            f"y={self.uplinks}), hosts={self.n_hosts})"
        )
