"""Saving and loading Jellyfish instances.

Experiments at paper scale take minutes to construct the RRG (and the
instance matters for reproducibility reports), so topologies can be
round-tripped through a JSON document carrying the ``RRG(N, x, y)``
parameters and the exact adjacency.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from repro.errors import TopologyError
from repro.topology.jellyfish import Jellyfish

__all__ = ["topology_to_dict", "topology_from_dict", "save_topology", "load_topology"]

_FORMAT = "repro-jellyfish-v1"


def topology_to_dict(topology: Jellyfish) -> Dict[str, Any]:
    """A JSON-ready description of the instance (parameters + adjacency)."""
    return {
        "format": _FORMAT,
        "n_switches": topology.n_switches,
        "ports": topology.ports,
        "uplinks": topology.uplinks,
        "adjacency": [list(nbrs) for nbrs in topology.adjacency],
    }


def topology_from_dict(doc: Dict[str, Any]) -> Jellyfish:
    """Rebuild a Jellyfish from :func:`topology_to_dict` output.

    The constructor re-validates regularity/symmetry, so a corrupted
    document fails loudly rather than producing a broken instance.
    """
    if doc.get("format") != _FORMAT:
        raise TopologyError(
            f"unrecognised topology document format {doc.get('format')!r}"
        )
    try:
        return Jellyfish(
            doc["n_switches"], doc["ports"], doc["uplinks"],
            adjacency=doc["adjacency"],
        )
    except KeyError as missing:
        raise TopologyError(f"topology document missing field {missing}") from None


def save_topology(topology: Jellyfish, path: str | Path) -> Path:
    """Write the instance to ``path`` as JSON."""
    path = Path(path)
    path.write_text(json.dumps(topology_to_dict(topology)))
    return path


def load_topology(path: str | Path) -> Jellyfish:
    """Read an instance previously written by :func:`save_topology`."""
    return topology_from_dict(json.loads(Path(path).read_text()))
