"""Random regular graph construction for Jellyfish.

Implements the incremental construction described in the Jellyfish paper
(Singla et al., NSDI'12): repeatedly join random switch pairs that both have
free ports and are not yet connected; when the process gets stuck with free
ports remaining, break a random existing link and rewire it through the stuck
switch.  The result is a uniform-ish random ``degree``-regular simple graph.

The construction is retried (with independent random substreams) until the
graph is connected.  For ``degree >= 3`` a random regular graph is connected
with high probability, so retries are rare.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set

from repro.errors import ConstructionError, TopologyError
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["random_regular_graph", "is_regular", "is_connected"]


def _attempt(n: int, degree: int, rng) -> List[Set[int]] | None:
    """One construction attempt.  Returns adjacency sets or ``None`` on failure."""
    adj: List[Set[int]] = [set() for _ in range(n)]
    free = {i for i in range(n) if degree > 0}

    def connect(u: int, v: int) -> None:
        adj[u].add(v)
        adj[v].add(u)
        if len(adj[u]) == degree:
            free.discard(u)
        if len(adj[v]) == degree:
            free.discard(v)

    def disconnect(u: int, v: int) -> None:
        adj[u].discard(v)
        adj[v].discard(u)
        free.add(u)
        free.add(v)

    stuck_rounds = 0
    while free:
        candidates = list(free)
        # Random pair join phase: try a bounded number of random picks before
        # declaring the phase stuck.
        joined = False
        for _ in range(4 * len(candidates) + 16):
            if len(free) < 2:
                break
            u, v = rng.choice(list(free), size=2, replace=False)
            u, v = int(u), int(v)
            if v not in adj[u]:
                connect(u, v)
                joined = True
                break
        if not joined and len(free) >= 2:
            # Random picks failed; scan exhaustively before declaring the
            # join phase stuck (random picks can miss the last few pairs).
            order = list(free)
            rng.shuffle(order)
            for i, u in enumerate(order):
                for v in order[i + 1:]:
                    if v not in adj[u]:
                        connect(u, v)
                        joined = True
                        break
                if joined:
                    break
        if joined:
            stuck_rounds = 0
            continue

        # Stuck: the free switches form a clique (or a single switch).
        # Rewire through an existing edge (x, y):
        #   - if some free switch u has >= 2 spare ports, replace (x, y)
        #     with (u, x) and (u, y) where x, y are non-adjacent to u;
        #   - otherwise pick two free switches u, w (one spare port each)
        #     and replace (x, y) with (u, x) and (w, y), with x
        #     non-adjacent to u and y non-adjacent to w.
        stuck_rounds += 1
        if stuck_rounds > 256:
            return None
        free_list = list(free)
        rng.shuffle(free_list)
        u = next(
            (s for s in free_list if degree - len(adj[s]) >= 2), None
        )
        w = None
        if u is None:
            if len(free_list) < 2:
                # A lone switch with one spare port: parity (n * degree
                # even) makes this unreachable, but guard anyway.
                return None
            u, w = free_list[0], free_list[1]
        all_edges = [(a, b) for a in range(n) for b in adj[a] if a < b]
        rng.shuffle(all_edges)
        rewired = False
        for (x, y) in all_edges:
            ends = {x, y}
            if u in ends or (w is not None and w in ends):
                continue
            if w is None:
                if x in adj[u] or y in adj[u]:
                    continue
                disconnect(x, y)
                connect(u, x)
                connect(u, y)
            else:
                # Try both orientations of (x, y) against (u, w).
                if x not in adj[u] and y not in adj[w]:
                    pass
                elif y not in adj[u] and x not in adj[w]:
                    x, y = y, x
                else:
                    continue
                disconnect(x, y)
                connect(u, x)
                connect(w, y)
            rewired = True
            break
        if not rewired:
            return None
    return adj


def random_regular_graph(
    n: int, degree: int, seed: SeedLike = None, max_tries: int = 32
) -> List[List[int]]:
    """Build a connected random ``degree``-regular simple graph on ``n`` nodes.

    Returns an adjacency structure ``adj`` where ``adj[u]`` is the sorted list
    of neighbours of ``u``.  Raises :class:`ConstructionError` if the
    parameters are infeasible or construction keeps failing.
    """
    if n < 1:
        raise TopologyError(f"need at least one switch, got n={n}")
    if degree < 0 or degree >= n:
        raise TopologyError(
            f"degree must satisfy 0 <= degree < n; got degree={degree}, n={n}"
        )
    if (n * degree) % 2 != 0:
        raise TopologyError(
            f"n * degree must be even for a regular graph; got n={n}, degree={degree}"
        )
    if degree == 0:
        if n == 1:
            return [[]]
        raise ConstructionError("degree-0 graph on more than one switch is disconnected")

    rng = ensure_rng(seed)
    for _ in range(max_tries):
        adj = _attempt(n, degree, rng)
        if adj is None:
            continue
        adj_lists = [sorted(s) for s in adj]
        if is_connected(adj_lists):
            return adj_lists
    raise ConstructionError(
        f"failed to build a connected {degree}-regular graph on {n} switches "
        f"after {max_tries} attempts"
    )


def is_regular(adj: List[List[int]], degree: int | None = None) -> bool:
    """True if every node in ``adj`` has the same degree (``degree`` if given)."""
    if not adj:
        return True
    d = len(adj[0]) if degree is None else degree
    return all(len(nbrs) == d for nbrs in adj)


def is_connected(adj: List[List[int]]) -> bool:
    """True if the graph in adjacency-list form is connected (BFS)."""
    n = len(adj)
    if n == 0:
        return True
    seen = [False] * n
    seen[0] = True
    queue = deque([0])
    count = 1
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if not seen[v]:
                seen[v] = True
                count += 1
                queue.append(v)
    return count == n
