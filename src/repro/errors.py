"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch one base class.  Subclasses indicate which subsystem failed and are
raised with actionable messages (what was asked, what constraint was
violated).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "ConstructionError",
    "PathError",
    "NoPathError",
    "InsufficientPathsError",
    "TrafficError",
    "MappingError",
    "ModelError",
    "SimulationError",
    "ConfigurationError",
    "ComparisonError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class TopologyError(ReproError):
    """Invalid topology parameters or malformed topology."""


class ConstructionError(TopologyError):
    """Random-graph construction failed (e.g. could not satisfy degree)."""


class PathError(ReproError):
    """Base class for path-computation errors."""


class NoPathError(PathError):
    """No path exists between the requested endpoints."""

    def __init__(self, source, destination, detail: str = ""):
        self.source = source
        self.destination = destination
        msg = f"no path from {source!r} to {destination!r}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class InsufficientPathsError(PathError):
    """Fewer than the requested number of paths exist.

    Carries the paths that *were* found so callers can decide whether a
    shorter path set is acceptable.
    """

    def __init__(self, source, destination, requested: int, found):
        self.source = source
        self.destination = destination
        self.requested = requested
        self.found = list(found)
        super().__init__(
            f"requested {requested} paths from {source!r} to {destination!r}, "
            f"only {len(self.found)} exist"
        )


class TrafficError(ReproError):
    """Invalid traffic-pattern specification."""


class MappingError(TrafficError):
    """Invalid process-to-node mapping."""


class ModelError(ReproError):
    """Throughput-model input is inconsistent (e.g. empty flow set)."""


class SimulationError(ReproError):
    """A simulator reached an invalid state or was misconfigured."""


class ConfigurationError(ReproError):
    """Invalid experiment/simulator configuration value."""


class ComparisonError(ReproError):
    """Two run artifacts cannot be diffed (incompatible schema/format)."""
