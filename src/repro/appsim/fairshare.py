"""Max-min fair bandwidth allocation (progressive filling / water-filling).

Given flows (each a set of link ids) and per-link capacities, computes the
unique max-min fair rate vector: all flows' rates rise together until some
link saturates; flows crossing a saturated link freeze at the current fill
level; the rest keep rising.  This is the steady-state bandwidth sharing of
a congestion-controlled transport, which is what the flow-level application
simulator advances between completion events.

The implementation is O(iterations x links + total flow-link incidences)
with NumPy-vectorised headroom computation; iterations are bounded by the
number of distinct bottleneck levels (at most the link count).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = ["maxmin_rates"]

_EPS = 1e-12


def maxmin_rates(
    flow_links: Sequence[np.ndarray],
    capacity: np.ndarray | float,
    n_links: int | None = None,
) -> np.ndarray:
    """Max-min fair rates for ``flow_links`` under ``capacity``.

    Parameters
    ----------
    flow_links:
        Per flow, the array of directed link ids it traverses.  A flow with
        no links (e.g. a zero-hop logical transfer) is unconstrained and
        reported at ``inf``.
    capacity:
        Scalar (uniform) or per-link array of capacities, in any rate unit;
        returned rates use the same unit.
    n_links:
        Total number of links (required when ``capacity`` is scalar).
    """
    n_flows = len(flow_links)
    if np.isscalar(capacity):
        if n_links is None:
            raise SimulationError("n_links is required with scalar capacity")
        cap_left = np.full(n_links, float(capacity))
    else:
        cap_left = np.asarray(capacity, dtype=np.float64).copy()
        n_links = cap_left.size
    if (cap_left <= 0).any():
        raise SimulationError("all link capacities must be positive")

    rates = np.full(n_flows, np.inf)
    if n_flows == 0:
        return rates

    # Per-link active-flow counts and reverse index link -> flows.
    count = np.zeros(n_links, dtype=np.int64)
    flows_on_link: List[List[int]] = [[] for _ in range(n_links)]
    active = np.zeros(n_flows, dtype=bool)
    for f, links in enumerate(flow_links):
        if len(links) == 0:
            continue  # unconstrained
        active[f] = True
        for link in links:
            count[link] += 1
            flows_on_link[link].append(f)

    fill = 0.0
    remaining = int(active.sum())
    while remaining > 0:
        used = count > 0
        headroom = cap_left[used] / count[used]
        r = float(headroom.min())
        fill += r
        cap_left[used] -= count[used] * r
        # Freeze every active flow crossing a now-saturated link.
        saturated = np.flatnonzero(used & (cap_left <= _EPS * fill + _EPS))
        if saturated.size == 0:  # pragma: no cover - float-safety net
            raise SimulationError("water-filling failed to saturate a link")
        for link in saturated:
            for f in flows_on_link[link]:
                if active[f]:
                    active[f] = False
                    rates[f] = fill
                    remaining -= 1
                    for l2 in flow_links[f]:
                        count[l2] -= 1
    return rates
