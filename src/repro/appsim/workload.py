"""Turning application traces into flows (the CODES front-end).

``build_workload`` is the glue between the trace layer and the flow
simulator: it takes host-level messages (from
:func:`repro.traffic.stencil.stencil_messages` +
:func:`repro.traffic.mapping.apply_mapping`), resolves each through the
path-selection scheme under test, and applies a flow-level rendering of the
routing mechanism:

- ``sp`` — the whole message on the minimal path;
- ``random`` — the message split evenly over the pair's ``k`` paths (the
  fluid limit of per-packet uniform spreading);
- ``ksp_adaptive`` — the message split into ``chunks`` pieces, each placed
  on the better (lower already-assigned bytes along the path) of two
  randomly drawn paths — the fluid rendering of the paper's best-of-two
  adaptive choice.

``stencil_time`` wraps the full Table V/VI pipeline for one cell.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.appsim.flows import FlowSpec
from repro.appsim.simulator import AppSimResult, run_flows
from repro.core.cache import PathCache
from repro.errors import ConfigurationError, SimulationError
from repro.topology.jellyfish import Jellyfish
from repro.traffic.mapping import apply_mapping, linear_mapping, random_mapping
from repro.traffic.stencil import stencil_messages
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_in, check_positive_int

__all__ = ["build_workload", "stencil_time"]


def _path_links(topology: Jellyfish, nodes, src_host: int, dst_host: int) -> np.ndarray:
    ids = topology.path_link_ids(nodes)
    return np.asarray(
        [topology.injection_link(src_host), *ids, topology.ejection_link(dst_host)],
        dtype=np.int64,
    )


def build_workload(
    topology: Jellyfish,
    messages: Sequence[Tuple[int, int, float]],
    paths: PathCache,
    mechanism: str = "ksp_adaptive",
    chunks: int = 4,
    seed: SeedLike = 0,
) -> List[FlowSpec]:
    """Resolve host-level ``messages`` into simulator flows.

    ``messages`` are ``(src host, dst host, bytes)``; self-messages are
    rejected (a trace where a rank talks to itself never reaches the
    network).
    """
    check_in(mechanism, ("sp", "random", "ksp_adaptive"), "mechanism")
    check_positive_int(chunks, "chunks")
    rng = ensure_rng(seed)
    flows: List[FlowSpec] = []
    # Bytes already assigned per link: the adaptive mechanism's congestion
    # estimate (the fluid analogue of queue length at injection time).
    assigned = np.zeros(topology.n_links, dtype=np.float64)

    for msg_id, (src, dst, nbytes) in enumerate(messages):
        if src == dst:
            raise SimulationError(f"message {msg_id} is a self-message ({src})")
        ss = topology.switch_of_host(src)
        ds = topology.switch_of_host(dst)
        pathset = paths.get(ss, ds)
        if mechanism == "sp":
            links = _path_links(topology, pathset.minimal.nodes, src, dst)
            flows.append(FlowSpec(src, dst, nbytes, links, msg_id, pathset.minimal.nodes))
            assigned[links] += nbytes
        elif mechanism == "random":
            share = nbytes / pathset.k
            for p in pathset:
                links = _path_links(topology, p.nodes, src, dst)
                flows.append(FlowSpec(src, dst, share, links, msg_id, p.nodes))
                assigned[links] += share
        else:  # ksp_adaptive
            share = nbytes / chunks
            for _ in range(chunks):
                if pathset.k == 1:
                    chosen = pathset.minimal
                else:
                    i = int(rng.integers(pathset.k))
                    j = int(rng.integers(pathset.k - 1))
                    if j >= i:
                        j += 1
                    a, b = pathset[i], pathset[j]
                    la = _path_links(topology, a.nodes, src, dst)
                    lb = _path_links(topology, b.nodes, src, dst)
                    chosen = a if assigned[la].max() <= assigned[lb].max() else b
                links = _path_links(topology, chosen.nodes, src, dst)
                flows.append(FlowSpec(src, dst, share, links, msg_id, chosen.nodes))
                assigned[links] += share

    # Merge same-message flows that landed on an identical link set (the
    # adaptive chunks often reuse a path); fewer flows = faster water-fill.
    merged: dict = {}
    for f in flows:
        key = (f.message_id, f.links.tobytes())
        if key in merged:
            merged[key].nbytes += f.nbytes
        else:
            merged[key] = f
    return list(merged.values())


def stencil_time(
    topology: Jellyfish,
    stencil: str,
    scheme: str,
    *,
    mapping: str = "linear",
    mechanism: str = "ksp_adaptive",
    k: int = 8,
    total_bytes: float = 15e6,
    link_bandwidth: float = 20e9,
    chunks: int = 4,
    n_ranks: int | None = None,
    iterations: int = 1,
    seed: SeedLike = 0,
    paths: PathCache | None = None,
) -> AppSimResult:
    """Communication time of a stencil run (one Table V/VI cell).

    Parameters mirror the paper: 15 MB per rank over 20 GBps links on the
    topology's full host count (override ``n_ranks`` to use fewer hosts).
    ``mapping`` is ``"linear"`` or ``"random"``.

    ``iterations > 1`` simulates that many *sequential* exchange phases
    (real stencil codes iterate), re-running the adaptive path choices per
    phase; completion times accumulate across phases and the returned
    makespan is the total communication time.
    """
    check_in(mapping, ("linear", "random"), "mapping")
    check_positive_int(iterations, "iterations")
    rng = ensure_rng(seed)
    n_ranks = topology.n_hosts if n_ranks is None else int(n_ranks)
    if paths is None:
        paths = PathCache(topology, scheme, k=k, seed=int(rng.integers(2**31)))

    rank_msgs = stencil_messages(stencil, n_ranks, total_bytes)
    if mapping == "linear":
        m = linear_mapping(n_ranks, topology.n_hosts)
    else:
        m = random_mapping(n_ranks, topology.n_hosts, seed=rng)
    host_msgs = apply_mapping(rank_msgs, m)

    results = []
    for _ in range(iterations):
        flows = build_workload(
            topology, host_msgs, paths, mechanism=mechanism, chunks=chunks, seed=rng
        )
        results.append(run_flows(flows, link_bandwidth, topology.n_links))
    if iterations == 1:
        return results[0]
    return _chain_results(results)


def _chain_results(results: Sequence[AppSimResult]) -> AppSimResult:
    """Aggregate sequential phases: phase i starts when phase i-1 ends."""
    import numpy as np

    offset = 0.0
    completions = []
    messages: dict = {}
    total_bytes = 0.0
    for r in results:
        completions.append(r.flow_completion + offset)
        for mid, t in r.message_completion.items():
            messages[mid] = t + offset  # last phase's completion wins
        total_bytes += r.total_bytes
        offset += r.makespan
    flow_completion = np.concatenate(completions)
    msg_times = np.asarray(list(messages.values()))
    return AppSimResult(
        flow_completion=flow_completion,
        message_completion=messages,
        makespan=offset,
        mean_flow_completion=float(flow_completion.mean()),
        mean_message_completion=float(msg_times.mean()),
        total_bytes=total_bytes,
    )
