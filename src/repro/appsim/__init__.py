"""Flow-level application simulator (the CODES replacement).

The paper's CODES experiments configure zero router/NIC/soft delays, so
message completion times are governed by *bandwidth contention on links*.
This package models exactly that: every message (or message chunk) becomes
a flow over the links of its selected path, link bandwidth is shared
max-min fairly among concurrent flows, and a discrete-event loop advances
from flow completion to flow completion.

Pipeline: :func:`~repro.appsim.workload.build_workload` turns a stencil
trace + rank mapping + path-selection scheme + routing mechanism into
:class:`~repro.appsim.flows.FlowSpec` objects;
:func:`~repro.appsim.simulator.run_flows` simulates them.
"""

from repro.appsim.fairshare import maxmin_rates
from repro.appsim.flows import FlowSpec
from repro.appsim.simulator import AppSimResult, run_flows
from repro.appsim.workload import build_workload, stencil_time

__all__ = [
    "maxmin_rates",
    "FlowSpec",
    "AppSimResult",
    "run_flows",
    "build_workload",
    "stencil_time",
]
