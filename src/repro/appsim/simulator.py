"""Discrete-event flow-level simulation loop.

All flows start at t = 0 (one exchange phase, as in the paper's stencil
runs).  The loop alternates:

1. compute max-min fair rates for the remaining flows;
2. advance time to the earliest flow completion at those rates;
3. retire completed flows and repeat.

Rates only change when the flow set changes, so this is exact for the
fluid model.  Completion times are reported per flow and aggregated per
message and for the whole exchange (the paper's "communication time").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.appsim.fairshare import maxmin_rates
from repro.appsim.flows import FlowSpec
from repro.errors import SimulationError

__all__ = ["AppSimResult", "run_flows"]

_REL_TOL = 1e-9


@dataclass(frozen=True)
class AppSimResult:
    """Completion statistics of one exchange.

    Times are in seconds (capacities are bytes/second).
    """

    flow_completion: np.ndarray
    message_completion: Dict[int, float]
    makespan: float
    mean_flow_completion: float
    mean_message_completion: float
    total_bytes: float

    def makespan_ms(self) -> float:
        """Exchange communication time in milliseconds (the table metric)."""
        return self.makespan * 1e3


def run_flows(
    flows: Sequence[FlowSpec],
    capacity: float | np.ndarray,
    n_links: int | None = None,
) -> AppSimResult:
    """Simulate ``flows`` sharing ``capacity`` until all complete."""
    if not flows:
        raise SimulationError("no flows to simulate")
    n = len(flows)
    remaining = np.asarray([f.nbytes for f in flows], dtype=np.float64)
    total_bytes = float(remaining.sum())
    completion = np.zeros(n)
    alive: List[int] = list(range(n))
    t = 0.0

    guard = 0
    while alive:
        guard += 1
        if guard > n + 1:
            raise SimulationError("flow completion loop failed to converge")
        rates = maxmin_rates([flows[i].links for i in alive], capacity, n_links)
        if not (rates > 0).all():
            raise SimulationError("max-min returned a zero rate")
        ttc = remaining[alive] / rates  # inf-rate flows finish instantly
        dt = float(ttc.min())
        t += dt
        threshold = dt * (1 + _REL_TOL)
        still: List[int] = []
        for pos, i in enumerate(alive):
            if ttc[pos] <= threshold:
                completion[i] = t
                remaining[i] = 0.0
            else:
                remaining[i] -= rates[pos] * dt
                still.append(i)
        if len(still) == len(alive):  # pragma: no cover - tolerance net
            raise SimulationError("no flow completed in an event step")
        alive = still

    message_completion: Dict[int, float] = {}
    for f, c in zip(flows, completion):
        prev = message_completion.get(f.message_id, 0.0)
        message_completion[f.message_id] = max(prev, float(c))

    msg_times = np.asarray(list(message_completion.values()))
    return AppSimResult(
        flow_completion=completion,
        message_completion=message_completion,
        makespan=float(completion.max()),
        mean_flow_completion=float(completion.mean()),
        mean_message_completion=float(msg_times.mean()),
        total_bytes=total_bytes,
    )
