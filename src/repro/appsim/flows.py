"""Flow records for the application simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.errors import SimulationError

__all__ = ["FlowSpec"]


@dataclass
class FlowSpec:
    """One bandwidth flow: a byte volume over a fixed set of links.

    A message may be realised as several flows (sub-flows over different
    paths, or adaptive chunks); ``message_id`` groups them so completion
    statistics can be reported per message.
    """

    src_host: int
    dst_host: int
    nbytes: float
    links: np.ndarray
    message_id: int
    path: Tuple[int, ...] = field(default=())

    def __post_init__(self):
        if self.nbytes <= 0:
            raise SimulationError(
                f"flow {self.src_host}->{self.dst_host} has {self.nbytes} bytes"
            )
        self.links = np.asarray(self.links, dtype=np.int64)
