"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package
(where PEP 660 editable builds are unavailable), via::

    python setup.py develop
"""

from setuptools import setup

setup()
