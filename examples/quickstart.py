#!/usr/bin/env python
"""Quickstart: build a Jellyfish, compare path-selection schemes, model
throughput, and run a short flit-level simulation.

Run with::

    python examples/quickstart.py
"""

from repro import Jellyfish, PathCache
from repro.core.properties import path_quality_report
from repro.model import model_throughput
from repro.netsim import PatternTraffic, SimConfig, Simulator
from repro.traffic import random_permutation


def main() -> None:
    # 1. A Jellyfish RRG(N=12, x=10, y=7): 12 switches, 3 hosts each.
    topo = Jellyfish(12, 10, 7, seed=42)
    print(f"topology: {topo}")

    # 2. Path selection: the paper's four schemes for one switch pair.
    for scheme in ("ksp", "rksp", "edksp", "redksp"):
        ps = PathCache(topo, scheme, k=4, seed=1).get(0, 7)
        print(f"  {scheme:>7}: hops={ps.hop_counts()}")

    # 3. Path quality over all pairs (the Tables II-IV metrics).
    print("\npath quality over all switch pairs (k=4):")
    for scheme in ("ksp", "redksp"):
        cache = PathCache(topo, scheme, k=4, seed=1)
        report = path_quality_report(cache.all_pairs())
        print(
            f"  {scheme:>7}: avg len {report['average_path_length']:.2f}, "
            f"disjoint pairs {100 * report['fraction_disjoint_pairs']:.0f}%, "
            f"worst link sharing {report['max_link_sharing']}"
        )

    # 4. Throughput model (Eq. 1) for a random permutation.
    pattern = random_permutation(topo.n_hosts, seed=7)
    print("\nmodelled per-node throughput, random permutation:")
    for scheme in ("sp", "ksp", "redksp"):
        cache = PathCache(topo, scheme, k=4, seed=1)
        result = model_throughput(topo, pattern, cache)
        print(f"  {scheme:>7}: {result.mean_per_node():.3f}")

    # 5. A short flit-level simulation with KSP-adaptive routing.
    cache = PathCache(topo, "redksp", k=4, seed=1)
    sim = Simulator(
        topo, cache, "ksp_adaptive", PatternTraffic(pattern),
        injection_rate=0.5,
        config=SimConfig(warmup_cycles=200, sample_cycles=200, n_samples=5),
        seed=3,
    )
    r = sim.run()
    print(
        f"\nflit-level @ rate 0.5: mean latency {r.mean_latency:.1f} cycles, "
        f"accepted throughput {r.accepted_throughput:.3f}, "
        f"saturated={r.saturated}"
    )


if __name__ == "__main__":
    main()
