#!/usr/bin/env python
"""Path-quality study: why vanilla KSP misbehaves on Jellyfish.

Reproduces the Section III-A argument end to end:

1. On the paper's Figure 3 example graph, vanilla KSP funnels all three
   paths through the same first link while rKSP/EDKSP spread them.
2. On a real Jellyfish, sweeps k and reports the Tables II-IV metrics per
   scheme, showing that edge-disjointness costs almost no extra path
   length.

The k-sweep warms each path table through the fast pipeline and persists
it in a local store, so re-running the script recomputes nothing.

Run with::

    python examples/path_quality_analysis.py
"""

import tempfile
from pathlib import Path as FsPath

from repro import Jellyfish, PathCache, PathStore
from repro.core import k_shortest_paths, edge_disjoint_paths
from repro.core.properties import path_quality_report
from repro.utils.tables import format_table


def figure3_graph():
    """The paper's Figure 3 topology (S1=0, A..I=1..8, D1=9)."""
    edges = [
        (0, 1), (0, 2), (0, 3),
        (1, 4), (2, 4), (3, 5),
        (1, 6),
        (4, 6), (4, 7), (5, 7), (5, 8),
        (6, 9), (7, 9), (8, 9),
    ]
    adj = [[] for _ in range(10)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    return [sorted(x) for x in adj]


def main() -> None:
    names = {0: "S1", 1: "A", 2: "B", 3: "C", 4: "E", 5: "F",
             6: "G", 7: "H", 8: "I", 9: "D1"}

    adj = figure3_graph()
    print("Figure 3 example: 3 shortest paths from S1 to D1")
    print("  vanilla KSP (deterministic):")
    for p in k_shortest_paths(adj, 0, 9, 3, tie="min"):
        print("    " + " -> ".join(names[v] for v in p))
    print("  edge-disjoint (Remove-Find):")
    for p in edge_disjoint_paths(adj, 0, 9, 3, tie="min"):
        print("    " + " -> ".join(names[v] for v in p))
    print("  (note every vanilla path crosses S1->A; the RF paths do not)\n")

    topo = Jellyfish(16, 12, 9, seed=5)
    # Persist warmed path tables next to the system temp dir; a second run
    # of this script loads them instead of re-running Yen's algorithm.
    store = PathStore(FsPath(tempfile.gettempdir()) / "repro-example-paths")
    print(f"k-sweep on {topo}: Tables II-IV metrics per scheme")
    print(f"(path tables persisted under {store.root})")
    rows = []
    for k in (2, 4, 8):
        for scheme in ("ksp", "rksp", "edksp", "redksp"):
            cache = PathCache(topo, scheme, k=k, seed=0)
            cache.warm(store=store)
            rep = path_quality_report(cache.all_pairs())
            rows.append(
                [
                    k,
                    scheme,
                    round(rep["average_path_length"], 3),
                    f"{100 * rep['fraction_disjoint_pairs']:.0f}%",
                    rep["max_link_sharing"],
                ]
            )
    print(
        format_table(
            ["k", "scheme", "avg path len", "disjoint pairs", "max link sharing"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
