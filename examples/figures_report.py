#!/usr/bin/env python
"""Figure-shaped reporting: terminal charts and machine-readable export.

Runs two experiment drivers at small scale and renders their results the
way the paper presents them — a latency-versus-load line chart (Figure 11)
and a throughput bar chart (Figure 4) — then exports both to JSON/CSV.

Run with::

    python examples/figures_report.py        (~2-3 minutes)
"""

import tempfile
from pathlib import Path

from repro.experiments import run_experiment
from repro.report import bar_chart, line_chart, save_result


def main() -> None:
    # Figure 11: latency vs offered load as a line chart.
    fig11 = run_experiment("fig11", scale="small", seed=0)
    print(fig11.to_text())
    print()
    print(
        line_chart(
            {scheme: pts for scheme, pts in fig11.data.items()},
            title="Figure 11 (small scale): latency vs offered load",
            x_label="offered load (flits/node/cycle)",
            y_label="mean packet latency (cycles)",
            width=56,
            height=14,
        )
    )
    print()

    # Figure 4: model throughput per scheme as bars (permutation column).
    fig4 = run_experiment("fig4", scale="small", seed=0)
    print(
        bar_chart(
            {scheme: vals["permutation"] for scheme, vals in fig4.data.items()},
            title="Figure 4 (small scale): model throughput, random permutation",
        )
    )

    # Machine-readable export.
    out = Path(tempfile.mkdtemp(prefix="repro-results-"))
    for result in (fig4, fig11):
        save_result(result, out / f"{result.experiment}.json")
        save_result(result, out / f"{result.experiment}.csv")
    print(f"\nexported JSON/CSV to {out}")


if __name__ == "__main__":
    main()
