#!/usr/bin/env python
"""Saturation study: routing mechanisms under demanding shift traffic.

Runs the Figure 9 protocol at example scale: for each path-selection
scheme and each routing mechanism, sweep the injection rate on a random
shift pattern and report the saturation throughput, then print the
latency-versus-load curve of the winning configuration.

Run with::

    python examples/saturation_study.py        (~2-4 minutes)
"""

from repro import Jellyfish, PathCache
from repro.netsim import (
    PatternTraffic,
    SimConfig,
    latency_curve,
    saturation_throughput,
)
from repro.traffic import shift
from repro.utils.tables import format_table

MECHANISMS = ("random", "round_robin", "ugal", "ksp_ugal", "ksp_adaptive")
SCHEMES = ("ksp", "redksp")


def main() -> None:
    topo = Jellyfish(12, 10, 6, seed=7)
    pattern = shift(topo.n_hosts, topo.n_hosts // 2)
    traffic = PatternTraffic(pattern)
    config = SimConfig(warmup_cycles=200, sample_cycles=200, n_samples=5)
    rates = [round(0.05 * i, 2) for i in range(1, 21)]

    # Warm each scheme's table for exactly the switch pairs the pattern
    # touches before the sweeps start (the fast path-table pipeline); the
    # simulator then never runs Yen's algorithm mid-measurement.
    pairs = traffic.switch_pairs(topo)

    print(f"saturation throughput of {pattern.name} on {topo}\n")
    rows = []
    best = None
    for scheme in SCHEMES:
        cache = PathCache(topo, scheme, k=4, seed=1)
        cache.warm(pairs)
        row = [scheme]
        for mech in MECHANISMS:
            th, _ = saturation_throughput(
                topo, cache, mech, traffic, rates=rates, config=config, seed=0
            )
            row.append(th)
            if best is None or th > best[0]:
                best = (th, scheme, mech)
        rows.append(row)
    print(format_table(["scheme"] + list(MECHANISMS), rows, ndigits=2))

    th, scheme, mech = best
    print(f"\nbest configuration: {scheme} + {mech} (throughput {th:.2f})")
    print("latency vs offered load for the best configuration:")
    cache = PathCache(topo, scheme, k=4, seed=1)
    cache.warm(pairs)
    points = latency_curve(
        topo, cache, mech, traffic, rates=rates, config=config, seed=0
    )
    print(
        format_table(
            ["offered load", "mean latency (cycles)", "accepted", "saturated"],
            [
                [p.rate, round(p.result.mean_latency, 1),
                 round(p.result.accepted_throughput, 3), p.result.saturated]
                for p in points
            ],
        )
    )


if __name__ == "__main__":
    main()
