#!/usr/bin/env python
"""Stencil workloads: HPC application communication times (Tables V/VI).

Simulates the four nearest-neighbour exchanges the paper traces with
CODES — 2DNN, 2DNNdiag, 3DNN, 3DNNdiag — on a Jellyfish, comparing
path-selection schemes under both linear and random process-to-node
mappings, with each rank sending 15 MB over 20 GBps links.

Run with::

    python examples/stencil_workloads.py
"""

from repro import Jellyfish, PathCache
from repro.appsim import stencil_time
from repro.utils.tables import format_table

APPS = ("2dnn", "2dnndiag", "3dnn", "3dnndiag")
SCHEMES = ("redksp", "rksp", "ksp")


def main() -> None:
    topo = Jellyfish(16, 12, 9, seed=5)  # 48 hosts: 8x6 and 4x4x3 grids
    print(f"stencil communication times on {topo}")
    print("15 MB per rank, 20 GBps links, KSP-adaptive routing\n")

    for mapping in ("linear", "random"):
        rows = []
        caches = {s: PathCache(topo, s, k=4, seed=2) for s in SCHEMES}
        for app in APPS:
            row = [app]
            times = {}
            for scheme in SCHEMES:
                r = stencil_time(
                    topo, app, scheme, mapping=mapping, paths=caches[scheme],
                    k=4, seed=11,
                )
                times[scheme] = r.makespan_ms()
                row.append(round(times[scheme], 3))
            row.append(f"{100 * (times['ksp'] - times['redksp']) / times['ksp']:+.1f}%")
            rows.append(row)
        print(
            format_table(
                ["app"] + [f"{s} (ms)" for s in SCHEMES] + ["rEDKSP vs KSP"],
                rows,
                title=f"--- {mapping} mapping ---",
            )
        )
        print()


if __name__ == "__main__":
    main()
